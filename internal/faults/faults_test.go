package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisarmedPointIsNil(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test/a")
	for i := 0; i < 100; i++ {
		if err := p.Fire(); err != nil {
			t.Fatalf("disarmed point fired: %v", err)
		}
	}
}

func TestErrorAction(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test/err")
	if err := r.Enable("test/err=error=boom"); err != nil {
		t.Fatal(err)
	}
	err := p.Fire()
	if err == nil {
		t.Fatal("armed error point returned nil")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InjectedError, got %T: %v", err, err)
	}
	if ie.Point != "test/err" || ie.Msg != "boom" {
		t.Fatalf("bad injected error: %+v", ie)
	}
	if !IsInjected(err) {
		t.Fatal("IsInjected(err) = false")
	}
}

func TestEveryAndAfter(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test/cadence")
	if err := r.Enable("test/cadence=after=2,every=3,error"); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 12; i++ {
		if p.Fire() != nil {
			fired = append(fired, i)
		}
	}
	// after=2 skips calls 1,2; every=3 then fires on eligible calls 5,8,11.
	want := []int{5, 8, 11}
	if len(fired) != len(want) {
		t.Fatalf("fired on calls %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on calls %v, want %v", fired, want)
		}
	}
}

func TestTimesCap(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test/times")
	if err := r.Enable("test/times=times=2,error"); err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < 10; i++ {
		if p.Fire() != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("fired %d times, want 2", n)
	}
	if p.Fires() != 2 {
		t.Fatalf("Fires() = %d, want 2", p.Fires())
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	run := func() []int {
		r := NewRegistry()
		p := r.Point("test/prob")
		if err := r.Enable("seed=42;test/prob=p=0.3,error"); err != nil {
			t.Fatal(err)
		}
		var fired []int
		for i := 0; i < 200; i++ {
			if p.Fire() != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.3 fired %d/200 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fire counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fire pattern at %d: %v vs %v", i, a, b)
		}
	}
}

func TestPanicAction(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test/panic")
	if err := r.Enable("test/panic=panic=kaboom"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("armed panic point did not panic")
		}
		if !strings.Contains(v.(string), "kaboom") {
			t.Fatalf("panic value %q missing message", v)
		}
	}()
	p.Fire()
}

func TestDelayAction(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test/delay")
	if err := r.Enable("test/delay=delay=30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Fire(); err != nil {
		t.Fatalf("delay-only point returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay fired in %v, want >= 30ms", d)
	}
}

func TestUnknownPointRejected(t *testing.T) {
	r := NewRegistry()
	r.Point("test/known")
	err := r.Enable("test/misspelled=error")
	if err == nil || !strings.Contains(err.Error(), "unknown point") {
		t.Fatalf("want unknown-point error, got %v", err)
	}
	// A failed Enable must not arm anything.
	if r.Point("test/known").armed.Load() {
		t.Fatal("failed Enable armed a point")
	}
}

func TestBadSpecsRejected(t *testing.T) {
	r := NewRegistry()
	r.Point("x")
	for _, spec := range []string{
		"x",               // no '='
		"x=p=2,error",     // probability out of range
		"x=every=0,error", // every < 1
		"x=delay=nope",    // bad duration
		"x=frobnicate=1",  // unknown action
		"x=p=0.5",         // no action
		"seed=zzz",        // bad seed
	} {
		if err := r.Enable(spec); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
}

func TestResetDisarms(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test/reset")
	if err := r.Enable("test/reset=error"); err != nil {
		t.Fatal(err)
	}
	if p.Fire() == nil {
		t.Fatal("armed point did not fire")
	}
	r.Reset()
	if err := p.Fire(); err != nil {
		t.Fatalf("reset point still fires: %v", err)
	}
	if p.Fires() != 0 {
		t.Fatalf("Fires() = %d after Reset, want 0", p.Fires())
	}
}

func TestEnableResetsCounters(t *testing.T) {
	r := NewRegistry()
	p := r.Point("test/rearm")
	if err := r.Enable("test/rearm=every=2,error"); err != nil {
		t.Fatal(err)
	}
	p.Fire()
	p.Fire()
	p.Fire()
	// Re-arm: cadence must restart from call 1.
	if err := r.Enable("test/rearm=every=2,error"); err != nil {
		t.Fatal(err)
	}
	if p.Fire() != nil {
		t.Fatal("call 1 after re-arm fired (cadence not reset)")
	}
	if p.Fire() == nil {
		t.Fatal("call 2 after re-arm did not fire")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Point("b/two")
	p := r.Point("a/one")
	if err := r.Enable("a/one=error"); err != nil {
		t.Fatal(err)
	}
	p.Fire()
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a/one" || snap[1].Name != "b/two" {
		t.Fatalf("bad snapshot order: %+v", snap)
	}
	if !snap[0].Armed || snap[0].Calls != 1 || snap[0].Fires != 1 {
		t.Fatalf("bad armed status: %+v", snap[0])
	}
	if snap[1].Armed {
		t.Fatalf("unarmed point reported armed: %+v", snap[1])
	}
}

func TestSetupGate(t *testing.T) {
	t.Setenv(AllowEnv, "")
	Default.Point("gate/test")
	if _, err := Setup("gate/test=error"); err == nil {
		t.Fatal("Setup accepted spec without DARWIN_ALLOW_FAULTS=1")
	}
	t.Setenv(AllowEnv, "1")
	spec, err := Setup("gate/test=error")
	if err != nil || spec != "gate/test=error" {
		t.Fatalf("Setup with gate set: spec=%q err=%v", spec, err)
	}
	Default.Reset()

	// Env fallback.
	t.Setenv(SpecEnv, "gate/test=error")
	spec, err = Setup("")
	if err != nil || spec != "gate/test=error" {
		t.Fatalf("Setup env fallback: spec=%q err=%v", spec, err)
	}
	Default.Reset()

	// Empty spec: injection off, no error regardless of gate.
	t.Setenv(SpecEnv, "")
	t.Setenv(AllowEnv, "")
	spec, err = Setup("")
	if err != nil || spec != "" {
		t.Fatalf("Setup with no spec: spec=%q err=%v", spec, err)
	}
}
