package fmindex

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"darwin/internal/dna"
)

func TestSuffixArrayMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(300)
		text := make([]byte, n)
		for i := 0; i < n-1; i++ {
			text[i] = byte(1 + rng.Intn(4))
		}
		text[n-1] = 0 // sentinel
		got := buildSuffixArray(text)
		want := naiveSuffixArray(text)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d): sa mismatch\ngot  %v\nwant %v", trial, n, got, want)
		}
	}
}

func TestSuffixArrayRepetitive(t *testing.T) {
	// Highly repetitive inputs stress prefix doubling.
	for _, s := range []string{"aaaaaaaaab", "abababab", "abcabcabcabc", "a"} {
		text := append([]byte(s), 0)
		got := buildSuffixArray(text)
		want := naiveSuffixArray(text)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: sa mismatch\ngot  %v\nwant %v", s, got, want)
		}
	}
}

func naiveFind(text, pattern string) []int {
	var out []int
	for i := 0; i+len(pattern) <= len(text); i++ {
		if text[i:i+len(pattern)] == pattern {
			out = append(out, i)
		}
	}
	return out
}

func TestCountLocateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	seq := dna.Random(rng, 3000, 0.5)
	x, err := Build(seq)
	if err != nil {
		t.Fatal(err)
	}
	text := seq.String()
	for trial := 0; trial < 100; trial++ {
		var pattern string
		if trial%2 == 0 {
			start := rng.Intn(len(seq) - 20)
			pattern = text[start : start+3+rng.Intn(15)]
		} else {
			pattern = dna.Random(rng, 3+rng.Intn(10), 0.5).String()
		}
		want := naiveFind(text, pattern)
		if got := x.Count(dna.Seq(pattern)); got != len(want) {
			t.Fatalf("Count(%q) = %d, want %d", pattern, got, len(want))
		}
		got := x.Locate(dna.Seq(pattern), 0)
		if want == nil {
			want = []int{}
		}
		if got == nil {
			got = []int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Locate(%q) = %v, want %v", pattern, got, want)
		}
	}
}

func TestLocateMaxHits(t *testing.T) {
	seq := dna.NewSeq(strings.Repeat("ACGT", 100))
	x, err := Build(seq)
	if err != nil {
		t.Fatal(err)
	}
	hits := x.Locate(dna.NewSeq("ACGT"), 5)
	if len(hits) != 5 {
		t.Errorf("Locate with maxHits=5 returned %d hits", len(hits))
	}
	all := x.Locate(dna.NewSeq("ACGT"), 0)
	if len(all) != 100 {
		t.Errorf("all hits = %d, want 100", len(all))
	}
	if !sort.IntsAreSorted(all) {
		t.Error("hits not sorted")
	}
}

func TestPatternWithN(t *testing.T) {
	seq := dna.NewSeq("ACGTNACGT")
	x, err := Build(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Count(dna.NewSeq("GTNA")); got != 0 {
		t.Errorf("pattern containing N matched %d times, want 0", got)
	}
	// Text N must not match a concrete pattern crossing it.
	if got := x.Count(dna.NewSeq("GTAA")); got != 0 {
		t.Errorf("pattern across text N matched %d times, want 0", got)
	}
	if got := x.Count(dna.NewSeq("ACGT")); got != 2 {
		t.Errorf("ACGT count = %d, want 2", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty sequence should error")
	}
	x, err := Build(dna.NewSeq("ACGT"))
	if err != nil {
		t.Fatal(err)
	}
	if x.Count(nil) != 0 {
		t.Error("empty pattern should count 0")
	}
	if x.Locate(nil, 0) != nil {
		t.Error("empty pattern should locate nothing")
	}
	if x.Len() != 4 {
		t.Errorf("Len = %d, want 4", x.Len())
	}
}

func TestLongestSuffixMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	seq := dna.Random(rng, 5000, 0.5)
	x, err := Build(seq)
	if err != nil {
		t.Fatal(err)
	}
	// A query whose tail is an exact 40bp chunk of the text.
	q := append(dna.Random(rng, 30, 0.5), seq[1000:1040]...)
	length, pos := x.LongestSuffixMatch(q, len(q), 10)
	if length < 40 {
		t.Fatalf("longest suffix match = %d, want ≥ 40", length)
	}
	found := false
	for _, p := range pos {
		if p+length <= len(seq) && string(seq[p:p+length]) == string(q[len(q)-length:]) {
			found = true
		} else {
			t.Errorf("position %d does not match the suffix", p)
		}
	}
	if !found {
		t.Error("no matching position returned")
	}
}

func TestLongestSuffixMatchStopsAtN(t *testing.T) {
	seq := dna.NewSeq("ACGTACGTACGT")
	x, err := Build(seq)
	if err != nil {
		t.Fatal(err)
	}
	q := dna.NewSeq("NACGT")
	length, _ := x.LongestSuffixMatch(q, len(q), 10)
	if length != 4 {
		t.Errorf("suffix match across N = %d, want 4", length)
	}
}
