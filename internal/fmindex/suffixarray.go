// Package fmindex implements a suffix array, Burrows-Wheeler transform
// and FM-index over DNA sequences. Section 3 of the paper contrasts
// Darwin's seed position table with "compressed tables based on
// Burrows Wheeler Transform [and] FM-index": the seed table stores hits
// sequentially (long DRAM bursts), whereas FM-index lookups are
// pointer chases. This package provides that alternative — it backs
// the BWA-MEM-class baseline mapper and the seed-lookup comparison
// bench.
package fmindex

import "sort"

// buildSuffixArray computes the suffix array of text (bytes already
// mapped to a small alphabet, with text[len-1] a unique smallest
// sentinel) using prefix doubling with radix sort: O(n log n) time,
// O(n) space.
func buildSuffixArray(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)

	// Initial ranks = byte values; initial order via counting sort.
	var cnt [256]int32
	for _, b := range text {
		cnt[b]++
	}
	var sum int32
	for c := 0; c < 256; c++ {
		cnt[c], sum = sum, sum+cnt[c]
	}
	for i := 0; i < n; i++ {
		sa[cnt[text[i]]] = int32(i)
		cnt[text[i]]++
	}
	rank[sa[0]] = 0
	for i := 1; i < n; i++ {
		rank[sa[i]] = rank[sa[i-1]]
		if text[sa[i]] != text[sa[i-1]] {
			rank[sa[i]]++
		}
	}

	buf := make([]int32, n)
	count := make([]int32, n+1)
	for h := 1; h < n; h *= 2 {
		// Sort by (rank[i], rank[i+h]) with two counting-sort passes.
		// Pass 1 (LSD): secondary key rank[i+h] (0 for i+h ≥ n).
		// Exploit: suffixes i in n-h..n-1 have empty second key and
		// come first; the rest follow in sa order shifted by h.
		idx := 0
		for i := n - h; i < n; i++ {
			buf[idx] = int32(i)
			idx++
		}
		for _, s := range sa {
			if int(s) >= h {
				buf[idx] = s - int32(h)
				idx++
			}
		}
		// Pass 2 (MSD): stable counting sort by rank[i].
		for i := range count[:n+1] {
			count[i] = 0
		}
		for i := 0; i < n; i++ {
			count[rank[i]+1]++
		}
		for i := 1; i <= n; i++ {
			count[i] += count[i-1]
		}
		for _, s := range buf {
			sa[count[rank[s]]] = s
			count[rank[s]]++
		}
		// Recompute ranks.
		key := func(i int32) (int32, int32) {
			second := int32(-1)
			if int(i)+h < n {
				second = rank[int(i)+h]
			}
			return rank[i], second
		}
		tmp[sa[0]] = 0
		maxRank := int32(0)
		for i := 1; i < n; i++ {
			a1, a2 := key(sa[i-1])
			b1, b2 := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if a1 != b1 || a2 != b2 {
				tmp[sa[i]]++
			}
			if tmp[sa[i]] > maxRank {
				maxRank = tmp[sa[i]]
			}
		}
		rank, tmp = tmp, rank
		if maxRank == int32(n-1) {
			break
		}
	}
	return sa
}

// naiveSuffixArray is the comparison-sort reference used by tests.
func naiveSuffixArray(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		return string(text[sa[a]:]) < string(text[sa[b]:])
	})
	return sa
}
