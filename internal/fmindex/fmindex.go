package fmindex

import (
	"fmt"
	"sort"

	"darwin/internal/dna"
)

// Alphabet: 0 is the sentinel, 1..4 are A,C,G,T, 5 is N. N never equals
// a pattern symbol, so patterns containing N simply never match.
const (
	sigma    = 6
	occEvery = 128 // occ checkpoint spacing
	saEvery  = 32  // suffix-array sample spacing
)

// Index is an FM-index over one sequence, supporting backward-search
// counting and locating of exact patterns.
type Index struct {
	n    int // text length including sentinel
	bwt  []byte
	c    [sigma + 1]int32 // C[c] = number of text symbols < c
	occ  [][sigma]int32   // checkpointed occ counts, every occEvery rows
	saS  []int32          // sampled SA: saS[i] = SA[i*saEvery]
	text []byte           // mapped text (kept for verification/extension)
}

func mapByte(b byte) byte {
	c := dna.Code(b)
	if c == dna.CodeN {
		return 5
	}
	return c + 1
}

// Build constructs the FM-index of seq.
func Build(seq dna.Seq) (*Index, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("fmindex: empty sequence")
	}
	text := make([]byte, len(seq)+1)
	for i, b := range seq {
		text[i] = mapByte(b)
	}
	text[len(seq)] = 0 // sentinel
	sa := buildSuffixArray(text)

	x := &Index{n: len(text), text: text}
	x.bwt = make([]byte, x.n)
	for i, s := range sa {
		if s == 0 {
			x.bwt[i] = text[x.n-1]
		} else {
			x.bwt[i] = text[s-1]
		}
	}
	// C array.
	var counts [sigma]int32
	for _, b := range text {
		counts[b]++
	}
	for c := 0; c < sigma; c++ {
		x.c[c+1] = x.c[c] + counts[c]
	}
	// Occ checkpoints.
	nCheck := x.n/occEvery + 1
	x.occ = make([][sigma]int32, nCheck)
	var running [sigma]int32
	for i := 0; i < x.n; i++ {
		if i%occEvery == 0 {
			x.occ[i/occEvery] = running
		}
		running[x.bwt[i]]++
	}
	// SA samples.
	x.saS = make([]int32, (x.n+saEvery-1)/saEvery)
	for i := 0; i < x.n; i += saEvery {
		x.saS[i/saEvery] = sa[i]
	}
	return x, nil
}

// occAt returns Occ(c, pos): occurrences of c in bwt[0:pos].
func (x *Index) occAt(c byte, pos int32) int32 {
	cp := pos / occEvery
	cnt := x.occ[cp][c]
	for i := cp * occEvery; i < pos; i++ {
		if x.bwt[i] == c {
			cnt++
		}
	}
	return cnt
}

// lf is the last-to-first mapping for BWT row i.
func (x *Index) lf(i int32) int32 {
	c := x.bwt[i]
	return x.c[c] + x.occAt(c, i)
}

// saAt recovers SA[i] by walking LF to the nearest sample.
func (x *Index) saAt(i int32) int32 {
	var steps int32
	for i%saEvery != 0 {
		i = x.lf(i)
		steps++
	}
	return (x.saS[i/saEvery] + steps) % int32(x.n)
}

// interval is a BWT row range [lo, hi) of suffixes prefixed by the
// current pattern.
type interval struct{ lo, hi int32 }

// backwardStep extends the interval by prepending symbol c.
func (x *Index) backwardStep(iv interval, c byte) interval {
	return interval{
		lo: x.c[c] + x.occAt(c, iv.lo),
		hi: x.c[c] + x.occAt(c, iv.hi),
	}
}

func (x *Index) search(pattern dna.Seq) interval {
	iv := interval{0, int32(x.n)}
	for i := len(pattern) - 1; i >= 0; i-- {
		c := mapByte(pattern[i])
		if c == 5 { // N in pattern matches nothing
			return interval{0, 0}
		}
		iv = x.backwardStep(iv, c)
		if iv.lo >= iv.hi {
			return interval{0, 0}
		}
	}
	return iv
}

// Count returns the number of occurrences of pattern in the text.
func (x *Index) Count(pattern dna.Seq) int {
	if len(pattern) == 0 {
		return 0
	}
	iv := x.search(pattern)
	return int(iv.hi - iv.lo)
}

// Locate returns up to maxHits occurrence positions of pattern, sorted
// ascending. maxHits ≤ 0 returns all occurrences.
func (x *Index) Locate(pattern dna.Seq, maxHits int) []int {
	if len(pattern) == 0 {
		return nil
	}
	iv := x.search(pattern)
	n := int(iv.hi - iv.lo)
	if n == 0 {
		return nil
	}
	if maxHits > 0 && n > maxHits {
		n = maxHits
	}
	out := make([]int, 0, n)
	for i := iv.lo; i < iv.lo+int32(n); i++ {
		out = append(out, int(x.saAt(i)))
	}
	sort.Ints(out)
	return out
}

// LongestSuffixMatch finds the longest suffix of q[:end] that occurs in
// the text, returning its length and up to maxHits positions — the
// variable-length seeding primitive of the BWA-MEM-class baseline
// (an approximation of super-maximal exact matches).
func (x *Index) LongestSuffixMatch(q dna.Seq, end, maxHits int) (length int, positions []int) {
	iv := interval{0, int32(x.n)}
	last := iv
	for i := end - 1; i >= 0; i-- {
		c := mapByte(q[i])
		if c == 5 {
			break
		}
		next := x.backwardStep(iv, c)
		if next.lo >= next.hi {
			break
		}
		last = next
		iv = next
		length++
	}
	if length == 0 {
		return 0, nil
	}
	n := int(last.hi - last.lo)
	if maxHits > 0 && n > maxHits {
		n = maxHits
	}
	positions = make([]int, 0, n)
	for i := last.lo; i < last.lo+int32(n); i++ {
		positions = append(positions, int(x.saAt(i)))
	}
	sort.Ints(positions)
	return length, positions
}

// Len returns the indexed text length (excluding the sentinel).
func (x *Index) Len() int { return x.n - 1 }
