package fmindex

import (
	"math/rand"

	"testing"
	"testing/quick"

	"darwin/internal/dna"
)

// Property: Count agrees with brute-force substring counting for
// arbitrary texts and patterns.
func TestQuickCountMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		text := dna.Random(rng, 20+rng.Intn(400), 0.3+rng.Float64()*0.4)
		x, err := Build(text)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			var pattern dna.Seq
			if rng.Intn(2) == 0 && len(text) > 10 {
				lo := rng.Intn(len(text) - 8)
				pattern = text[lo : lo+1+rng.Intn(7)].Clone()
			} else {
				pattern = dna.Random(rng, 1+rng.Intn(8), 0.5)
			}
			// Manual scan (strings.Count skips overlapping matches).
			want := 0
			for i := 0; i+len(pattern) <= len(text); i++ {
				if string(text[i:i+len(pattern)]) == pattern.String() {
					want++
				}
			}
			if x.Count(pattern) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: every Locate position is a genuine occurrence and Locate
// agrees with Count.
func TestQuickLocateSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		text := dna.Random(rng, 50+rng.Intn(300), 0.5)
		x, err := Build(text)
		if err != nil {
			return false
		}
		lo := rng.Intn(len(text) - 10)
		pattern := text[lo : lo+2+rng.Intn(8)]
		pos := x.Locate(pattern, 0)
		if len(pos) != x.Count(pattern) {
			return false
		}
		for _, p := range pos {
			if p+len(pattern) > len(text) || string(text[p:p+len(pattern)]) != pattern.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: the suffix array is a permutation of 0..n-1 sorted by
// suffix order.
func TestQuickSuffixArrayValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		text := make([]byte, n)
		for i := 0; i < n-1; i++ {
			text[i] = byte(1 + rng.Intn(4))
		}
		text[n-1] = 0
		sa := buildSuffixArray(text)
		seen := make([]bool, n)
		for _, s := range sa {
			if s < 0 || int(s) >= n || seen[s] {
				return false
			}
			seen[s] = true
		}
		for i := 1; i < n; i++ {
			if string(text[sa[i-1]:]) >= string(text[sa[i]:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
