package gactsim

import (
	"math/rand"
	"testing"

	"darwin/internal/align"
	"darwin/internal/dna"
	"darwin/internal/hw"
	"darwin/internal/readsim"
)

func mutate(rng *rand.Rand, s dna.Seq, rate float64) dna.Seq {
	out := make(dna.Seq, 0, len(s))
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < rate/3:
		case r < 2*rate/3:
			out = append(out, dna.Base(byte(rng.Intn(4))), b)
		case r < rate:
			out = append(out, dna.MutatePoint(rng, b))
		default:
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, 'A')
	}
	return out
}

// TestMatchesSoftwareTileAligner is the core validation: the simulated
// array must produce byte-identical results to align.AlignTile for
// every tile shape, scoring, error rate, and both traceback modes.
func TestMatchesSoftwareTileAligner(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	scorings := []align.Scoring{align.GACTEval(), align.Figure1()}
	affine := align.Simple(2, 3, 4)
	affine.GapExtend = 1
	scorings = append(scorings, affine)

	for trial := 0; trial < 40; trial++ {
		sc := scorings[trial%len(scorings)]
		arr, err := New(8, 1024, sc) // small array: many blocks per tile
		if err != nil {
			t.Fatal(err)
		}
		n := 3 + rng.Intn(60)
		m := 3 + rng.Intn(60)
		ref := dna.Random(rng, n, 0.5)
		var query dna.Seq
		if trial%2 == 0 {
			query = mutate(rng, ref, 0.3)
			if len(query) > m {
				query = query[:m]
			}
		} else {
			query = dna.Random(rng, m, 0.5)
		}
		for _, firstTile := range []bool{true, false} {
			maxOff := 1 + rng.Intn(50)
			want := align.AlignTile(ref, query, firstTile, maxOff, &sc)
			got, cyc, err := arr.AlignTile(ref, query, firstTile, maxOff)
			if err != nil {
				t.Fatal(err)
			}
			if got.Score != want.Score || got.IOff != want.IOff || got.JOff != want.JOff {
				t.Fatalf("trial %d first=%v: got (score=%d ioff=%d joff=%d), want (%d %d %d)\nref=%s\nq=%s",
					trial, firstTile, got.Score, got.IOff, got.JOff, want.Score, want.IOff, want.JOff, ref, query)
			}
			if got.Cigar.String() != want.Cigar.String() {
				t.Fatalf("trial %d first=%v: cigar %s, want %s", trial, firstTile, got.Cigar, want.Cigar)
			}
			if firstTile && want.Score > 0 && (got.MaxI != want.MaxI || got.MaxJ != want.MaxJ) {
				t.Fatalf("trial %d: max cell (%d,%d), want (%d,%d)", trial, got.MaxI, got.MaxJ, want.MaxI, want.MaxJ)
			}
			if cyc.Total() <= 0 {
				t.Fatal("no cycles counted")
			}
		}
	}
}

// TestMatchesOnRealReads runs the paper's tile shape (Npe=64, T=320)
// on simulated noisy reads.
func TestMatchesOnRealReads(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	sc := align.GACTEval()
	arr, err := New(64, 2048, sc)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Tmax < 512 {
		t.Fatalf("Tmax = %d, want ≥ 512 (paper: 2KB banks × 64 PEs)", arr.Tmax)
	}
	for _, p := range readsim.Profiles {
		ref := dna.Random(rng, 320, 0.5)
		query := mutate(rng, ref, p.Total())
		if len(query) > 320 {
			query = query[:320]
		}
		want := align.AlignTile(ref, query, false, 192, &sc)
		got, cyc, err := arr.AlignTile(ref, query, false, 192)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score || got.Cigar.String() != want.Cigar.String() {
			t.Errorf("%s: (score %d, %s), want (%d, %s)", p.Name, got.Score, got.Cigar, want.Score, want.Cigar)
		}
		// Fill time: ⌈320/64⌉ blocks × (320+64) cycles.
		if wantFill := 5 * (320 + 64); cyc.Fill != wantFill {
			t.Errorf("%s: fill cycles %d, want %d", p.Name, cyc.Fill, wantFill)
		}
	}
}

// TestCycleModelCalibration: the analytical model's cycles-per-tile
// must agree with the simulator within the model's overhead term.
func TestCycleModelCalibration(t *testing.T) {
	sc := align.GACTEval()
	arr, err := New(64, 2048, sc)
	if err != nil {
		t.Fatal(err)
	}
	model := hw.NewGACTModel(hw.DefaultChip())
	rng := rand.New(rand.NewSource(83))
	ref := dna.Random(rng, 320, 0.5)
	query := mutate(rng, ref, 0.15)
	if len(query) > 320 {
		query = query[:320]
	}
	_, cyc, err := arr.AlignTile(ref, query, false, 192)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(cyc.Total())
	want := model.CyclesPerTile(320, len(query), cyc.Traceback/3)
	ratio := got / want
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("simulated %v cycles vs model %v (ratio %.2f), want within 20%%", got, want, ratio)
	}
}

// TestUtilization: PE duty factor on a full square tile must be high
// (wavefront fill/drain is the only idle time).
func TestUtilization(t *testing.T) {
	sc := align.GACTEval()
	arr, err := New(64, 2048, sc)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(84))
	ref := dna.Random(rng, 320, 0.5)
	query := dna.Random(rng, 320, 0.5)
	_, cyc, err := arr.AlignTile(ref, query, false, 192)
	if err != nil {
		t.Fatal(err)
	}
	util := float64(cyc.PECellOps) / float64(cyc.Fill*64)
	if util < 0.7 {
		t.Errorf("PE utilization %.2f, want ≥ 0.7", util)
	}
	if cyc.PECellOps != 320*320 {
		t.Errorf("cell ops %d, want %d", cyc.PECellOps, 320*320)
	}
}

func TestTileSizeLimit(t *testing.T) {
	sc := align.GACTEval()
	arr, err := New(4, 32, sc) // tiny banks
	if err != nil {
		t.Fatal(err)
	}
	big := dna.NewSeq("ACGTACGTACGTACGTACGTACGTACGTACGT")
	if len(big) <= arr.Tmax {
		t.Skipf("test needs tile > Tmax=%d", arr.Tmax)
	}
	if _, _, err := arr.AlignTile(big, big, false, 0); err == nil {
		t.Error("tile exceeding Tmax should error")
	}
}

func TestNewErrors(t *testing.T) {
	sc := align.GACTEval()
	if _, err := New(0, 2048, sc); err == nil {
		t.Error("zero PEs should error")
	}
	if _, err := New(4, 0, sc); err == nil {
		t.Error("zero bank should error")
	}
	bad := align.Scoring{}
	if _, err := New(4, 64, bad); err == nil {
		t.Error("invalid scoring should error")
	}
}

func TestEmptyTile(t *testing.T) {
	sc := align.GACTEval()
	arr, err := New(4, 64, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, cyc, err := arr.AlignTile(nil, dna.NewSeq("ACGT"), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 0 || cyc.Total() != 0 {
		t.Errorf("empty tile: %+v %+v", res, cyc)
	}
}
