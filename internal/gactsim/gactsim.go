// Package gactsim is a cycle-level functional simulator of the GACT
// array hardware of Section 7: a linear systolic array of Npe
// processing elements exploiting wavefront parallelism, one
// single-port traceback SRAM bank per PE, an inter-block H/D FIFO, a
// systolic max reduction, and a 3-cycle-per-step traceback unit.
//
// The simulator is bit-faithful to the described microarchitecture —
// 16-bit score arithmetic, 4-bit traceback pointers (2 bits for the H
// source, 1 bit each for gap opens), per-PE row interleaving — and is
// validated two ways: its alignments must equal the software tile
// aligner (align.AlignTile) exactly, and its cycle counts calibrate
// the analytical throughput model (hw.GACTModel).
package gactsim

import (
	"fmt"

	"darwin/internal/align"
	"darwin/internal/dna"
)

// Pointer encoding, matching the PE datapath (Section 7): two bits for
// the H source and one bit each recording whether the horizontal/
// vertical gap opened at this cell.
const (
	ptrNull  = 0
	ptrDiag  = 1
	ptrHoriz = 2 // consumes reference (deletion)
	ptrVert  = 3 // consumes query (insertion)
	ptrMask  = 3

	horizOpenBit = 1 << 2
	vertOpenBit  = 1 << 3
)

// negInf16 is the 16-bit "minus infinity" for gap registers; chosen so
// subtracting a gap penalty cannot wrap.
const negInf16 = int16(-0x4000)

// Array simulates one GACT array.
type Array struct {
	// Npe is the number of processing elements.
	Npe int
	// Tmax is the largest supported tile size, fixed by the traceback
	// SRAM: 4·Tmax² bits must fit in Npe banks of BankBytes each.
	Tmax int
	// BankBytes is the per-PE traceback SRAM bank size (2 KB in the
	// paper's configuration, giving Tmax = 512 with Npe = 64).
	BankBytes int
	// Scoring holds the 18 configuration parameters loaded before
	// operation (16 substitution scores, gap open, gap extend).
	Scoring align.Scoring

	// banks[p] holds 4-bit pointers for the rows PE p computes,
	// two pointers per byte, indexed by (row/Npe, col).
	banks [][]byte

	// lut is the scoring flattened over base codes (shared with the
	// software tile kernel), standing in for the PE's configured
	// substitution registers: one array read per cell instead of a
	// Scoring.Sub call.
	lut align.SubLUT

	// Per-call scratch, grown on demand and reused across tiles — the
	// simulator equivalents of fixed hardware storage (FIFOs, neighbour
	// registers, PE state) allocate nothing in steady state. All are
	// fully rewritten before being read within a call, so none need
	// clearing beyond what AlignTile does explicitly.
	fifoH, fifoV []int16
	nextH, nextV []int16
	hOut, vOut   [][]int16
	pes          []peState
	rCode, qCode []byte
}

// Cycles breaks down the simulated cycle count of one tile.
type Cycles struct {
	// Fill is the systolic matrix-fill time: query blocks × wavefront
	// passes.
	Fill int
	// Reduce is the systolic global-max reduction (first tiles only).
	Reduce int
	// Traceback is 3 cycles per traceback step.
	Traceback int
	// PECellOps counts cell computations (for utilization: PECellOps /
	// (Fill × Npe) is the array duty factor).
	PECellOps int
}

// Total returns the tile's total cycles.
func (c Cycles) Total() int { return c.Fill + c.Reduce + c.Traceback }

// New configures an array. The default hardware point is
// New(64, 2048, scoring): 64 PEs with 2 KB banks (Tmax 512).
func New(npe, bankBytes int, sc align.Scoring) (*Array, error) {
	if npe <= 0 {
		return nil, fmt.Errorf("gactsim: need at least one PE, got %d", npe)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	a := &Array{Npe: npe, BankBytes: bankBytes, Scoring: sc, lut: sc.LUT()}
	// 4·T² bits ≤ npe·bankBytes·8  ⇒  T ≤ sqrt(npe·bankBytes·2).
	bits := npe * bankBytes * 8
	for (a.Tmax+1)*(a.Tmax+1)*4 <= bits {
		a.Tmax++
	}
	if a.Tmax == 0 {
		return nil, fmt.Errorf("gactsim: bank size %d B cannot hold any tile", bankBytes)
	}
	a.banks = make([][]byte, npe)
	return a, nil
}

// peState is one processing element's registers.
type peState struct {
	hPrev  int16 // H(row, i-1): own previous column
	hDiag  int16 // H(row-1, i-1): from the neighbour, delayed
	horiz  int16 // horizontal gap score at (row, i-1)
	qBase  byte  // the query base loaded for this block row
	maxS   int16 // running per-PE maximum (first tiles)
	maxRow int32
	maxCol int32
	active bool
}

// AlignTile simulates one Align call: fills the tile systolically,
// then (per the t flag) traces back from the max or bottom-right cell,
// consuming at most maxOff bases of either sequence. The result is
// identical to align.AlignTile with the same arguments.
func (a *Array) AlignTile(rTile, qTile dna.Seq, firstTile bool, maxOff int) (align.TileResult, Cycles, error) {
	var cyc Cycles
	n, m := len(rTile), len(qTile)
	if n == 0 || m == 0 {
		return align.TileResult{}, cyc, nil
	}
	if n > a.Tmax || m > a.Tmax {
		return align.TileResult{}, cyc, fmt.Errorf("gactsim: tile %d×%d exceeds Tmax %d (traceback SRAM)", n, m, a.Tmax)
	}
	if maxOff <= 0 {
		maxOff = max(n, m)
	}

	// Allocate pointer storage in the banks: PE p stores rows p,
	// p+Npe, ... Each row needs n 4-bit pointers.
	rowsPerPE := (m + a.Npe - 1) / a.Npe
	bankNeed := (rowsPerPE*n + 1) / 2
	for p := range a.banks {
		if cap(a.banks[p]) < bankNeed {
			a.banks[p] = make([]byte, bankNeed)
		} else {
			a.banks[p] = a.banks[p][:bankNeed]
			for i := range a.banks[p] {
				a.banks[p][i] = 0
			}
		}
	}

	// Precode the tile once; the wavefront loop reads codes and the
	// scoring LUT only (the hardware's ASCII→3-bit converter ahead of
	// the PE array).
	a.rCode = dna.AppendCodes(a.rCode[:0], rTile)
	a.qCode = dna.AppendCodes(a.qCode[:0], qTile)
	rc := a.rCode

	// Inter-block FIFO: H and vertical-gap scores of the last PE's row,
	// consumed by PE 0 in the next block (depth Tmax in hardware).
	fifoH := grow16(&a.fifoH, n)
	fifoV := grow16(&a.fifoV, n)
	for i := range fifoH {
		fifoH[i] = 0
	}
	for i := range fifoV {
		fifoV[i] = negInf16
	}

	if cap(a.pes) < a.Npe {
		a.pes = make([]peState, a.Npe)
	}
	pes := a.pes[:a.Npe]
	var globalMax int16
	var gMaxRow, gMaxCol int32

	blocks := (m + a.Npe - 1) / a.Npe
	for b := 0; b < blocks; b++ {
		// Load query bases into the PEs for this block.
		for p := 0; p < a.Npe; p++ {
			row := b*a.Npe + p
			pes[p] = peState{hDiag: 0, hPrev: 0, horiz: negInf16, active: row < m}
			if row < m {
				pes[p].qBase = a.qCode[row]
				pes[p].maxS = 0
				pes[p].maxRow, pes[p].maxCol = -1, -1
			}
		}
		// Next block's FIFO contents are produced by the last active
		// PE of this block.
		lastActive := a.Npe - 1
		if b == blocks-1 {
			lastActive = (m - 1) % a.Npe
		}
		// nextH/nextV and hOut/vOut are reused dirty: every entry a PE
		// reads was written earlier in the same block (PE p−1 computes
		// column i one wavefront cycle before PE p consumes it), and
		// the next block's FIFO is filled across all n columns by the
		// last active PE.
		nextH := grow16(&a.nextH, n)
		nextV := grow16(&a.nextV, n)

		// Wavefront: at cycle c, PE p computes column c-p of its row.
		// Vertical dependencies come from PE p-1's output one cycle
		// earlier (or the FIFO for PE 0).
		//
		// vOut[p][i] is (H, vGap) of PE p at column i, consumed by
		// PE p+1; modelled with per-PE row buffers (the hardware's
		// neighbour registers in time-unrolled form).
		for len(a.hOut) < a.Npe {
			a.hOut = append(a.hOut, nil)
			a.vOut = append(a.vOut, nil)
		}
		hOut := a.hOut[:a.Npe]
		vOut := a.vOut[:a.Npe]
		for p := range hOut {
			hOut[p] = grow16(&a.hOut[p], n)
			vOut[p] = grow16(&a.vOut[p], n)
		}
		for c := 0; c < n+a.Npe; c++ {
			for p := a.Npe - 1; p >= 0; p-- {
				i := c - p
				if i < 0 || i >= n || !pes[p].active {
					continue
				}
				pe := &pes[p]
				row := b*a.Npe + p

				// Upstream values: H and vertical-gap of (row-1, i).
				var upH, upV int16
				if p == 0 {
					upH, upV = fifoH[i], fifoV[i]
				} else {
					upH, upV = hOut[p-1][i], vOut[p-1][i]
				}

				var ptr byte
				hOpen := pe.hPrev - int16(a.Scoring.GapOpen)
				hExt := pe.horiz - int16(a.Scoring.GapExtend)
				hGap := hExt
				if hOpen >= hExt {
					hGap = hOpen
					ptr |= horizOpenBit
				}
				vOpen := upH - int16(a.Scoring.GapOpen)
				vExt := upV - int16(a.Scoring.GapExtend)
				vGap := vExt
				if vOpen >= vExt {
					vGap = vOpen
					ptr |= vertOpenBit
				}
				diagScore := pe.hDiag + a.lut[(int(pe.qBase)&7)*align.LUTStride+(int(rc[i])&7)]
				best, src := int16(0), byte(ptrNull)
				if diagScore > best {
					best, src = diagScore, ptrDiag
				}
				if hGap > best {
					best, src = hGap, ptrHoriz
				}
				if vGap > best {
					best, src = vGap, ptrVert
				}
				ptr |= src

				a.storePtr(p, row/a.Npe, i, n, ptr)
				cyc.PECellOps++

				pe.hDiag = upH // becomes the diagonal for column i+1
				pe.hPrev = best
				pe.horiz = hGap
				hOut[p][i] = best
				vOut[p][i] = vGap
				if p == lastActive {
					nextH[i] = best
					nextV[i] = vGap
				}
				if firstTile && best > pe.maxS {
					pe.maxS = best
					pe.maxRow, pe.maxCol = int32(row), int32(i)
				}
			}
		}
		cyc.Fill += n + a.Npe
		// Double-buffer swap: the consumed FIFO storage becomes the
		// next block's producer buffer.
		fifoH, fifoV = nextH, nextV
		a.fifoH, a.nextH = a.nextH, a.fifoH
		a.fifoV, a.nextV = a.nextV, a.fifoV

		// Per-block contribution to the global max, reduced
		// systolically at the end; done here in software order that
		// matches the row-major first-encounter tie-break.
		if firstTile {
			for p := 0; p <= lastActive; p++ {
				pe := &pes[p]
				if pe.maxRow < 0 {
					continue
				}
				if pe.maxS > globalMax ||
					(pe.maxS == globalMax && (pe.maxRow < gMaxRow || (pe.maxRow == gMaxRow && pe.maxCol < gMaxCol))) {
					globalMax = pe.maxS
					gMaxRow, gMaxCol = pe.maxRow, pe.maxCol
				}
			}
		}
	}
	if firstTile {
		cyc.Reduce = a.Npe // systolic max reduction pass
	}

	// Select the traceback start.
	startI, startJ := n, m
	score := int(fifoH[n-1]) // H of the bottom-right cell
	if firstTile {
		if globalMax <= 0 {
			return align.TileResult{Score: 0}, cyc, nil
		}
		startI, startJ = int(gMaxCol)+1, int(gMaxRow)+1
		score = int(globalMax)
	}

	// Traceback unit: 3 cycles per step (address, SRAM read, pointer
	// computation).
	res := align.TileResult{Score: score, MaxI: startI, MaxJ: startJ}
	if firstTile {
		res.MaxI, res.MaxJ = int(gMaxCol)+1, int(gMaxRow)+1
	}
	i, j := startI, startJ
	const stateH = byte(4)
	state := stateH
	for i > 0 || j > 0 {
		if res.IOff >= maxOff || res.JOff >= maxOff {
			break
		}
		row, col := j-1, i-1
		var p byte
		if row >= 0 && col >= 0 {
			p = a.loadPtr(row%a.Npe, row/a.Npe, col, n)
		}
		cyc.Traceback += 3
		switch state {
		case stateH:
			switch p & ptrMask {
			case ptrNull:
				goto done
			case ptrDiag:
				if i == 0 || j == 0 {
					goto done
				}
				res.Cigar = res.Cigar.AppendOp(align.OpMatch)
				i--
				j--
				res.IOff++
				res.JOff++
			case ptrHoriz:
				state = ptrHoriz
			case ptrVert:
				state = ptrVert
			}
		case ptrHoriz:
			if i == 0 {
				goto done
			}
			res.Cigar = res.Cigar.AppendOp(align.OpDel)
			open := p&horizOpenBit != 0
			i--
			res.IOff++
			if open {
				state = stateH
			}
		case ptrVert:
			if j == 0 {
				goto done
			}
			res.Cigar = res.Cigar.AppendOp(align.OpIns)
			open := p&vertOpenBit != 0
			j--
			res.JOff++
			if open {
				state = stateH
			}
		}
	}
done:
	res.Cigar = res.Cigar.Reverse()
	return res, cyc, nil
}

// grow16 returns *buf resized to length n, reallocating only when the
// capacity is insufficient (monotonic growth, like the kernel buffers).
func grow16(buf *[]int16, n int) []int16 {
	if cap(*buf) < n {
		*buf = make([]int16, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// storePtr writes a 4-bit pointer into PE p's bank.
func (a *Array) storePtr(p, rowIdx, col, n int, ptr byte) {
	idx := rowIdx*n + col
	if idx%2 == 0 {
		a.banks[p][idx/2] = (a.banks[p][idx/2] & 0xF0) | ptr
	} else {
		a.banks[p][idx/2] = (a.banks[p][idx/2] & 0x0F) | ptr<<4
	}
}

// loadPtr reads a 4-bit pointer from PE p's bank.
func (a *Array) loadPtr(p, rowIdx, col, n int) byte {
	idx := rowIdx*n + col
	b := a.banks[p][idx/2]
	if idx%2 == 0 {
		return b & 0x0F
	}
	return b >> 4
}
