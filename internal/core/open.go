package core

import (
	"fmt"

	"darwin/internal/dna"
)

// ShardSpec is the shard geometry part of OpenConfig, mirrored from
// internal/shard.Config so core can describe a sharded deployment
// without importing the shard package (which imports core).
type ShardSpec struct {
	// Shards is the number of shards to split the reference into.
	// Mutually exclusive with ShardSize.
	Shards int
	// ShardSize is the shard core size in bases (rounded up to the
	// D-SOFT bin size). Used when Shards is zero.
	ShardSize int
	// Overlap is the margin each shard's extent extends beyond its
	// core; values below the candidate-exactness minimum are raised.
	Overlap int
	// MaxResidentBytes bounds resident shard seed-table bytes (LRU
	// eviction). Zero means unbounded.
	MaxResidentBytes int64
}

// Enabled reports whether the spec asks for sharding at all. A zero
// ShardSpec means "use the monolithic engine".
func (s ShardSpec) Enabled() bool { return s.Shards > 0 || s.ShardSize > 0 }

// OpenConfig describes one reference index to construct: the records
// to concatenate, the engine parameters, and the shard geometry that
// selects the implementation.
type OpenConfig struct {
	// Records is the multi-sequence reference, concatenated with the
	// engine's N-padding separator invariant. Ignored when IndexPath
	// is set — the index file carries the reference bytes.
	Records []dna.Record
	// Core holds the full Darwin parameter set.
	Core Config
	// Shard selects the sharded scatter-gather mapper when Enabled;
	// otherwise the monolithic engine is built.
	Shard ShardSpec
	// IndexPath, when set, loads the mapper from a prebuilt persistent
	// index file (internal/indexfile) instead of building from Records:
	// the file is mapped and its tables served as views, so no build
	// pass runs. The file's parameters and shard geometry must match
	// Core and Shard (a sharded file with a zero Shard spec adopts the
	// file's geometry). Requires a registered opener (import
	// darwin/internal/indexio).
	IndexPath string
}

// shardedFactory is installed by internal/shard's init so Open can
// build a ScatterMapper without core importing shard (shard imports
// core, so the dependency must point this way).
var shardedFactory func(recs []dna.Record, cfg Config, spec ShardSpec) (Mapper, *Reference, error)

// RegisterSharded installs the sharded-mapper constructor. Called from
// internal/shard's init; last registration wins.
func RegisterSharded(f func(recs []dna.Record, cfg Config, spec ShardSpec) (Mapper, *Reference, error)) {
	shardedFactory = f
}

// indexOpener is installed by internal/indexio's init so Open can load
// a mapper from a persistent index file without core importing the
// index packages (indexio imports core and shard).
var indexOpener func(path string, cfg Config, spec ShardSpec) (Mapper, *Reference, error)

// RegisterIndexOpener installs the persistent-index loader. Called
// from internal/indexio's init; last registration wins.
func RegisterIndexOpener(f func(path string, cfg Config, spec ShardSpec) (Mapper, *Reference, error)) {
	indexOpener = f
}

// Open is the single construction entrypoint for a Mapper: it
// concatenates the records and selects monolithic Darwin or the
// sharded scatter-gather mapper from cfg.Shard, so callers (CLIs, the
// serving layer's index cache) never branch on geometry themselves.
// The two implementations are alignment-bit-identical; geometry only
// changes memory residency and build scheduling.
func Open(cfg OpenConfig) (Mapper, *Reference, error) {
	if cfg.IndexPath != "" {
		if indexOpener == nil {
			return nil, nil, fmt.Errorf("core: open: index load requested but not linked (import darwin/internal/indexio)")
		}
		return indexOpener(cfg.IndexPath, cfg.Core, cfg.Shard)
	}
	if len(cfg.Records) == 0 {
		return nil, nil, fmt.Errorf("core: open: no reference records")
	}
	if cfg.Shard.Enabled() {
		if shardedFactory == nil {
			return nil, nil, fmt.Errorf("core: open: sharded mapper requested but not linked (import darwin/internal/shard)")
		}
		return shardedFactory(cfg.Records, cfg.Core, cfg.Shard)
	}
	eng, ref, err := NewMulti(cfg.Records, cfg.Core)
	if err != nil {
		return nil, nil, err
	}
	return eng, ref, nil
}
