package core

import (
	"reflect"
	"testing"
	"time"
)

// fillStats assigns a distinct value derived from base to every field,
// recursing into nested structs (dsoft.Stats) and seeding slices.
// It returns the next unused ordinal so nested fields stay distinct.
func fillStats(v reflect.Value, base int64, t *testing.T) int64 {
	t.Helper()
	typ := v.Type()
	for i := 0; i < typ.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Struct:
			base = fillStats(f, base, t)
		case reflect.Int, reflect.Int32, reflect.Int64:
			f.SetInt(base)
			base++
		case reflect.Slice:
			if f.Type().Elem().Kind() != reflect.Int {
				t.Fatalf("%s.%s: unsupported slice kind", typ.Name(), typ.Field(i).Name)
			}
			f.Set(reflect.ValueOf([]int{int(base)}))
			base++
		default:
			t.Fatalf("%s.%s has kind %s: extend this test and MapStats.Add together",
				typ.Name(), typ.Field(i).Name, f.Kind())
		}
	}
	return base
}

// checkSummed verifies every numeric field of got equals a+b and every
// slice field is the concatenation, recursing like fillStats.
func checkSummed(got, a, b reflect.Value, path string, t *testing.T) {
	t.Helper()
	typ := got.Type()
	for i := 0; i < typ.NumField(); i++ {
		name := path + typ.Field(i).Name
		g, x, y := got.Field(i), a.Field(i), b.Field(i)
		switch g.Kind() {
		case reflect.Struct:
			checkSummed(g, x, y, name+".", t)
		case reflect.Int, reflect.Int32, reflect.Int64:
			if g.Int() != x.Int()+y.Int() {
				t.Errorf("%s not aggregated by Add: got %d, want %d", name, g.Int(), x.Int()+y.Int())
			}
		case reflect.Slice:
			if g.Len() != x.Len()+y.Len() {
				t.Errorf("%s not concatenated by Add: len %d, want %d", name, g.Len(), x.Len()+y.Len())
			}
		}
	}
}

// TestMapStatsAddAggregatesEveryField is the aggregation safety net:
// a stats field added to MapStats (or nested dsoft.Stats) but dropped
// from Add fails here instead of silently reporting zeros.
func TestMapStatsAddAggregatesEveryField(t *testing.T) {
	var a, b MapStats
	next := fillStats(reflect.ValueOf(&a).Elem(), 1, t)
	fillStats(reflect.ValueOf(&b).Elem(), next, t)
	aCopy := a
	got := a
	got.Add(b)
	checkSummed(reflect.ValueOf(&got).Elem(), reflect.ValueOf(&aCopy).Elem(), reflect.ValueOf(&b).Elem(), "MapStats.", t)
}

// Duration fields are ints to reflect; make sure they're actually
// time.Durations being summed, not dropped (guards the field list
// above staying in sync with reality).
func TestMapStatsAddDurations(t *testing.T) {
	a := MapStats{FiltrationTime: time.Second, AlignmentTime: 2 * time.Second}
	a.Add(MapStats{FiltrationTime: 3 * time.Second, AlignmentTime: 5 * time.Second})
	if a.FiltrationTime != 4*time.Second || a.AlignmentTime != 7*time.Second {
		t.Errorf("durations not summed: %v %v", a.FiltrationTime, a.AlignmentTime)
	}
}
