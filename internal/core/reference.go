package core

import (
	"fmt"
	"sort"

	"darwin/internal/dna"
)

// Reference is a multi-sequence reference (e.g. the 24 nuclear
// chromosomes of GRCh38, Section 8) concatenated into one indexable
// sequence. Sequences are separated by N padding, which contributes
// no seeds and no alignment score, so seeding and extension never
// produce cross-chromosome artifacts; coordinates map back through
// Locate.
type Reference struct {
	seq     dna.Seq
	names   []string
	offsets []int
	lengths []int
}

// NewReference concatenates records with N padding to multiples of
// pad (use the D-SOFT bin size, as the de novo pipeline does). Every
// pair of adjacent sequences is separated by at least one full-N
// region — when a sequence's length is already a multiple of pad, a
// whole pad block is inserted so seeds and extension can never bridge
// two sequences. Only the final sequence may go unpadded, keeping
// total concatenated length minimal.
func NewReference(recs []dna.Record, pad int) (*Reference, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("core: no reference sequences")
	}
	if pad <= 0 {
		pad = 128
	}
	r := &Reference{}
	for i, rec := range recs {
		if len(rec.Seq) == 0 {
			return nil, fmt.Errorf("core: reference sequence %q is empty", rec.Name)
		}
		r.names = append(r.names, rec.Name)
		r.offsets = append(r.offsets, len(r.seq))
		r.lengths = append(r.lengths, len(rec.Seq))
		r.seq = append(r.seq, rec.Seq...)
		npad := 0
		if rem := len(rec.Seq) % pad; rem != 0 {
			npad = pad - rem
		} else if i != len(recs)-1 {
			npad = pad
		}
		for ; npad > 0; npad-- {
			r.seq = append(r.seq, 'N')
		}
	}
	return r, nil
}

// NewReferenceFromMeta reconstructs a Reference around an already
// concatenated sequence and its recorded layout — the path a
// persistent index load takes, where seq is a view over mapped file
// bytes and the names/offsets/lengths come from the index header
// instead of a fresh NewReference concatenation.
func NewReferenceFromMeta(seq dna.Seq, names []string, offsets, lengths []int) (*Reference, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no reference sequences")
	}
	if len(offsets) != len(names) || len(lengths) != len(names) {
		return nil, fmt.Errorf("core: %d names vs %d offsets vs %d lengths", len(names), len(offsets), len(lengths))
	}
	prevEnd := 0
	for i := range names {
		if lengths[i] <= 0 {
			return nil, fmt.Errorf("core: reference sequence %q has non-positive length %d", names[i], lengths[i])
		}
		if offsets[i] < prevEnd {
			return nil, fmt.Errorf("core: reference sequence %q at offset %d overlaps its predecessor ending at %d",
				names[i], offsets[i], prevEnd)
		}
		prevEnd = offsets[i] + lengths[i]
	}
	if prevEnd > len(seq) {
		return nil, fmt.Errorf("core: reference metadata spans %d bases but the sequence has %d", prevEnd, len(seq))
	}
	return &Reference{seq: seq, names: names, offsets: offsets, lengths: lengths}, nil
}

// NewReferenceLayout builds a Reference carrying only the coordinate
// layout — no resident sequence. This is the cluster router's view: it
// translates global alignment spans back to per-sequence coordinates
// (LocateSpan, Name) from a worker-advertised layout without ever
// holding reference bases. total is the concatenated length the layout
// describes; Seq returns nil, so only coordinate methods may be used.
func NewReferenceLayout(names []string, offsets, lengths []int, total int) (*Reference, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no reference sequences")
	}
	if len(offsets) != len(names) || len(lengths) != len(names) {
		return nil, fmt.Errorf("core: %d names vs %d offsets vs %d lengths", len(names), len(offsets), len(lengths))
	}
	prevEnd := 0
	for i := range names {
		if lengths[i] <= 0 {
			return nil, fmt.Errorf("core: reference sequence %q has non-positive length %d", names[i], lengths[i])
		}
		if offsets[i] < prevEnd {
			return nil, fmt.Errorf("core: reference sequence %q at offset %d overlaps its predecessor ending at %d",
				names[i], offsets[i], prevEnd)
		}
		prevEnd = offsets[i] + lengths[i]
	}
	if prevEnd > total {
		return nil, fmt.Errorf("core: reference layout spans %d bases but the reference has %d", prevEnd, total)
	}
	return &Reference{names: names, offsets: offsets, lengths: lengths}, nil
}

// Seq returns the concatenated sequence the engine indexes.
func (r *Reference) Seq() dna.Seq { return r.seq }

// NumSeqs returns the number of reference sequences.
func (r *Reference) NumSeqs() int { return len(r.names) }

// Name and Len describe sequence i.
func (r *Reference) Name(i int) string { return r.names[i] }

// Len returns the length of sequence i.
func (r *Reference) Len(i int) int { return r.lengths[i] }

// Offset returns sequence i's global offset in the concatenation.
func (r *Reference) Offset(i int) int { return r.offsets[i] }

// Locate maps a concatenated-coordinate position to (sequence index,
// local position). Positions inside padding map to the preceding
// sequence, clamped to its end.
func (r *Reference) Locate(pos int) (int, int) {
	i := sort.SearchInts(r.offsets, pos+1) - 1
	if i < 0 {
		i = 0
	}
	local := pos - r.offsets[i]
	if local > r.lengths[i] {
		local = r.lengths[i]
	}
	return i, local
}

// LocateSpan maps a concatenated [start, end) span to a sequence and
// local coordinates, clipping any padding overhang. It reports an
// error if the span straddles two sequences (possible only for
// degenerate alignments bridging ≥ pad Ns, which score nothing).
func (r *Reference) LocateSpan(start, end int) (seq int, localStart, localEnd int, err error) {
	si, ls := r.Locate(start)
	ei, le := r.Locate(end - 1)
	if si != ei {
		return 0, 0, 0, fmt.Errorf("core: span [%d,%d) crosses reference sequences %q and %q",
			start, end, r.names[si], r.names[ei])
	}
	le++
	if le > r.lengths[si] {
		le = r.lengths[si]
	}
	return si, ls, le, nil
}

// NewMulti indexes a multi-sequence reference. The returned engine's
// alignments use concatenated coordinates; use the Reference to map
// them back.
func NewMulti(recs []dna.Record, cfg Config) (*Darwin, *Reference, error) {
	ref, err := NewReference(recs, cfg.BinSize)
	if err != nil {
		return nil, nil, err
	}
	d, err := New(ref.Seq(), cfg)
	if err != nil {
		return nil, nil, err
	}
	return d, ref, nil
}
