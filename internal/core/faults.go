package core

import "darwin/internal/faults"

// Fault injection points for the core pipeline (armed only via
// faults.Setup; a single atomic load each when disarmed):
//
//   - index/build fires at the top of seed-table construction — a
//     delay models a slow index build (the breaker experiment's
//     workload), an error a corrupt reference.
//   - core/map_read fires once per read inside the panic-isolation
//     scope, so injected errors and panics exercise exactly the
//     per-read blast-radius containment that organic failures get.
var (
	fpIndexBuild = faults.Default.Point("index/build")
	fpMapRead    = faults.Default.Point("core/map_read")
)
