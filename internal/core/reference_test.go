package core

import (
	"testing"

	"darwin/internal/dna"
	"darwin/internal/readsim"
)

func TestReferenceCoordinates(t *testing.T) {
	recs := []dna.Record{
		{Name: "chr1", Seq: dna.NewSeq("ACGTACGTAC")}, // len 10
		{Name: "chr2", Seq: dna.NewSeq("GGGGCCCC")},   // len 8
	}
	ref, err := NewReference(recs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumSeqs() != 2 || ref.Name(1) != "chr2" || ref.Len(0) != 10 {
		t.Fatalf("metadata wrong: %+v", ref)
	}
	// chr1 padded to 16; chr2 starts at 16.
	if i, p := ref.Locate(0); i != 0 || p != 0 {
		t.Errorf("Locate(0) = (%d,%d)", i, p)
	}
	if i, p := ref.Locate(9); i != 0 || p != 9 {
		t.Errorf("Locate(9) = (%d,%d)", i, p)
	}
	if i, p := ref.Locate(12); i != 0 || p != 10 {
		t.Errorf("Locate(padding) = (%d,%d), want clamped (0,10)", i, p)
	}
	if i, p := ref.Locate(16); i != 1 || p != 0 {
		t.Errorf("Locate(16) = (%d,%d), want (1,0)", i, p)
	}
	if _, ls, le, err := ref.LocateSpan(16, 24); err != nil || ls != 0 || le != 8 {
		t.Errorf("LocateSpan(chr2) = %d %d %v", ls, le, err)
	}
	if _, _, _, err := ref.LocateSpan(5, 20); err == nil {
		t.Error("cross-sequence span should error")
	}
	// Padding bases must be N.
	if ref.Seq()[10] != 'N' || ref.Seq()[15] != 'N' {
		t.Error("padding not N")
	}
}

// TestReferenceExactBinBoundary: a final sequence whose length is
// already a multiple of pad gets no trailing padding (minimal
// coordinates), but an interior exact-multiple sequence still gets a
// full pad block — adjacent sequences must always be separated by Ns
// so seeding and extension cannot produce chimeric alignments.
func TestReferenceExactBinBoundary(t *testing.T) {
	exact := dna.NewSeq("ACGTACGTACGTACGT") // len 16 == pad
	ref, err := NewReference([]dna.Record{{Name: "chr1", Seq: exact}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ref.Seq()); got != 16 {
		t.Fatalf("single exact-bin sequence: concatenated length %d, want 16 (no padding)", got)
	}
	if i, p := ref.Locate(15); i != 0 || p != 15 {
		t.Errorf("Locate(15) = (%d,%d), want (0,15)", i, p)
	}

	recs := []dna.Record{
		{Name: "chr1", Seq: exact},
		{Name: "chr2", Seq: dna.NewSeq("GGGGCCCC")}, // len 8, padded to 16
	}
	ref, err = NewReference(recs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ref.Seq()); got != 48 {
		t.Fatalf("concatenated length %d, want 48 (16 + full 16-N separator + 8 padded to 16)", got)
	}
	// The separator block between chr1 and chr2 must be all N.
	for p := 16; p < 32; p++ {
		if ref.Seq()[p] != 'N' {
			t.Fatalf("separator position %d = %c, want N", p, ref.Seq()[p])
		}
	}
	if i, p := ref.Locate(15); i != 0 || p != 15 {
		t.Errorf("Locate(15) = (%d,%d), want (0,15)", i, p)
	}
	if i, p := ref.Locate(32); i != 1 || p != 0 {
		t.Errorf("Locate(32) = (%d,%d), want (1,0) — chr2 starts after the separator block", i, p)
	}
	if _, ls, le, err := ref.LocateSpan(32, 40); err != nil || ls != 0 || le != 8 {
		t.Errorf("LocateSpan(chr2) = %d %d %v", ls, le, err)
	}
	if _, _, _, err := ref.LocateSpan(10, 36); err == nil {
		t.Error("span bridging the separator into chr2 should error")
	}
}

func TestReferenceErrors(t *testing.T) {
	if _, err := NewReference(nil, 16); err == nil {
		t.Error("empty record list should error")
	}
	if _, err := NewReference([]dna.Record{{Name: "x"}}, 16); err == nil {
		t.Error("empty sequence should error")
	}
}

// TestNewMultiMapsToRightChromosome: reads simulated from each
// "chromosome" must map back to it with correct local coordinates.
func TestNewMultiMapsToRightChromosome(t *testing.T) {
	chr1 := testGenome(t, 60000, 151)
	chr2 := testGenome(t, 40000, 152)
	recs := []dna.Record{{Name: "chr1", Seq: chr1}, {Name: "chr2", Seq: chr2}}
	d, ref, err := NewMulti(recs, DefaultConfig(11, 600, 20))
	if err != nil {
		t.Fatal(err)
	}
	for ci, chrom := range []dna.Seq{chr1, chr2} {
		reads, err := readsim.SimulateN(chrom, 8, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: int64(153 + ci)})
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i := range reads {
			r := &reads[i]
			alns, _ := d.MapRead(r.Seq)
			best := Best(alns)
			if best == nil {
				continue
			}
			seq, lo, _, err := ref.LocateSpan(best.Result.RefStart, best.Result.RefEnd)
			if err != nil {
				t.Errorf("chr%d read %d: %v", ci+1, i, err)
				continue
			}
			if seq == ci && lo >= r.RefStart-50 && lo <= r.RefStart+50 {
				correct++
			}
		}
		if correct < 7 {
			t.Errorf("chr%d: %d/8 reads mapped to the right place", ci+1, correct)
		}
	}
}
