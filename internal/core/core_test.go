package core

import (
	"testing"

	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

func testGenome(t *testing.T, n int, seed int64) dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Config{
		Length: n, GC: 0.45, RepeatFraction: 0.2, RepeatFamilies: 5,
		RepeatUnitLen: 250, RepeatDivergence: 0.1, TandemFraction: 0.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Seq
}

// smallConfig scales the paper's parameters to test-sized genomes:
// smaller k (hits/seed regime preserved) and proportional N/h.
func smallConfig() Config {
	cfg := DefaultConfig(11, 600, 20)
	return cfg
}

func TestMapReadFindsTruePosition(t *testing.T) {
	ref := testGenome(t, 300000, 101)
	// Per-read-class D-SOFT tuning, mirroring Table 4's approach of
	// lowering k and raising N for noisier reads (values scaled to the
	// 300 kbp test genome).
	configs := map[string]Config{
		"PacBio": DefaultConfig(11, 600, 20),
		"ONT_2D": DefaultConfig(10, 800, 20),
		"ONT_1D": DefaultConfig(9, 1500, 18),
	}
	for _, p := range readsim.Profiles {
		d, err := New(ref, configs[p.Name])
		if err != nil {
			t.Fatal(err)
		}
		reads, err := readsim.SimulateN(ref, 10, readsim.Config{Profile: p, MeanLen: 3000, Seed: 102})
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i := range reads {
			r := &reads[i]
			alns, _ := d.MapRead(r.Seq)
			best := Best(alns)
			if best == nil {
				continue
			}
			if best.Result.RefStart >= r.RefStart-50 && best.Result.RefStart <= r.RefStart+50 {
				correct++
			}
		}
		if correct < 8 {
			t.Errorf("%s: mapped %d/10 reads to the true position, want ≥ 8", p.Name, correct)
		}
	}
}

func TestMapReadStrandHandling(t *testing.T) {
	ref := testGenome(t, 100000, 103)
	d, err := New(ref, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(ref, 20, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: 104})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reads {
		r := &reads[i]
		alns, _ := d.MapRead(r.Seq)
		best := Best(alns)
		if best == nil {
			t.Fatalf("read %d unmapped", i)
		}
		if best.Reverse != r.Reverse {
			t.Errorf("read %d: strand = %v, truth %v", i, best.Reverse, r.Reverse)
		}
		if err := best.Result.Check(ref, orient(r.Seq, best.Reverse)); err != nil {
			t.Errorf("read %d: %v", i, err)
		}
	}
}

func orient(q dna.Seq, rev bool) dna.Seq {
	if rev {
		return dna.RevComp(q)
	}
	return q
}

func TestMapStatsInstrumentation(t *testing.T) {
	ref := testGenome(t, 100000, 105)
	d, err := New(ref, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(ref, 3, readsim.Config{Profile: readsim.ONT2D, MeanLen: 2000, Seed: 106})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reads {
		_, st := d.MapRead(reads[i].Seq)
		if st.DSOFT.SeedsIssued == 0 || st.DSOFT.Hits == 0 {
			t.Fatalf("read %d: no D-SOFT work recorded: %+v", i, st.DSOFT)
		}
		if st.Candidates == 0 || st.Tiles == 0 {
			t.Fatalf("read %d: no GACT work recorded: %+v", i, st)
		}
		if len(st.FirstTileScores) != st.Candidates && st.Candidates <= d.cfg.MaxCandidates {
			t.Errorf("read %d: first-tile scores %d != candidates %d",
				i, len(st.FirstTileScores), st.Candidates)
		}
		if st.PassedHTile > st.Candidates {
			t.Errorf("read %d: passed %d > candidates %d", i, st.PassedHTile, st.Candidates)
		}
		if st.FiltrationTime <= 0 || st.AlignmentTime <= 0 {
			t.Errorf("read %d: stage times missing: %+v", i, st)
		}
	}
}

// TestHTileFilterRejectsFalseHits checks the Figure 12 mechanism: with
// h_tile=90, candidates from unrelated sequence are rejected before
// extension.
func TestHTileFilterRejectsFalseHits(t *testing.T) {
	ref := testGenome(t, 100000, 107)
	cfg := smallConfig()
	cfg.Threshold = 12 // deliberately permissive: more false candidates
	d, err := New(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A read from a different genome: every candidate is false.
	other := testGenome(t, 5000, 108)
	alns, st := d.MapRead(other[:3000])
	if st.Candidates > 0 && st.PassedHTile > st.Candidates/10 {
		t.Errorf("h_tile let through %d of %d false candidates", st.PassedHTile, st.Candidates)
	}
	for _, a := range alns {
		if a.FirstTileScore < cfg.HTile {
			t.Errorf("alignment passed with first-tile score %d < h_tile %d", a.FirstTileScore, cfg.HTile)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, smallConfig()); err == nil {
		t.Error("empty reference should error")
	}
	ref := testGenome(t, 1000, 109)
	bad := smallConfig()
	bad.SeedN = 0
	if _, err := New(ref, bad); err == nil {
		t.Error("N=0 should error")
	}
	bad = smallConfig()
	bad.GACT.T = 0
	if _, err := New(ref, bad); err == nil {
		// The GACT engine is built (and its config validated) at
		// construction, so a broken tile geometry fails fast instead of
		// silently mapping nothing.
		t.Error("invalid GACT config should error at construction")
	}
}

func TestOverlapperFindsTrueOverlaps(t *testing.T) {
	// Repeat-free genome: with no repeats, every reported pair must
	// come from genuinely intersecting templates. (On repetitive
	// genomes, cross-copy pairs are legitimate precision loss — the
	// quantity Table 4 measures — not correctness bugs.)
	g, err := genome.Generate(genome.Config{Length: 40000, GC: 0.45, Seed: 110})
	if err != nil {
		t.Fatal(err)
	}
	ref := g.Seq
	reads, err := readsim.SimulateN(ref, 60, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: 111})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	cfg := DefaultConfig(11, 1000, 20)
	cfg.SeedStride = 2 // overlap workloads seed the whole read
	ov, err := NewOverlapper(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	overlaps, stats := ov.FindOverlaps(500)
	if len(overlaps) == 0 {
		t.Fatal("no overlaps found")
	}
	if stats.TableBuildTime <= 0 {
		t.Error("table build time not recorded")
	}

	// Ground truth: pairs whose template intervals intersect ≥ 1 kbp.
	truth := map[[2]int]bool{}
	for a := 0; a < len(reads); a++ {
		for b := a + 1; b < len(reads); b++ {
			lo := max(reads[a].RefStart, reads[b].RefStart)
			hi := min(reads[a].RefEnd, reads[b].RefEnd)
			if hi-lo >= 1000 {
				truth[[2]int{a, b}] = true
			}
		}
	}
	if len(truth) == 0 {
		t.Fatal("test setup produced no ground-truth overlaps")
	}
	found := map[[2]int]bool{}
	falsePairs := 0
	for i := range overlaps {
		o := &overlaps[i]
		a, b := o.Pair()
		if a == b {
			t.Fatalf("self overlap reported: %+v", o)
		}
		found[[2]int{a, b}] = true
		if !truth[[2]int{a, b}] {
			// Not necessarily wrong (shorter true overlaps exist), but
			// pairs with no template intersection at all are errors.
			lo := max(reads[a].RefStart, reads[b].RefStart)
			hi := min(reads[a].RefEnd, reads[b].RefEnd)
			if hi-lo < 200 {
				falsePairs++
			}
		}
		if o.TargetStart < 0 || o.TargetEnd > len(seqs[o.Target]) || o.TargetStart >= o.TargetEnd {
			t.Fatalf("overlap extent out of range: %+v", o)
		}
	}
	detected := 0
	for p := range truth {
		if found[p] {
			detected++
		}
	}
	sens := float64(detected) / float64(len(truth))
	if sens < 0.85 {
		t.Errorf("overlap sensitivity %.2f (%d/%d), want ≥ 0.85", sens, detected, len(truth))
	}
	if frac := float64(falsePairs) / float64(len(overlaps)); frac > 0.05 {
		t.Errorf("%.0f%% of overlaps have no template intersection", frac*100)
	}
}

func TestOverlapperErrors(t *testing.T) {
	if _, err := NewOverlapper(nil, smallConfig()); err == nil {
		t.Error("no reads should error")
	}
	cfg := smallConfig()
	cfg.BinSize = 0
	if _, err := NewOverlapper([]dna.Seq{dna.NewSeq("ACGT")}, cfg); err == nil {
		t.Error("zero bin size should error")
	}
}
