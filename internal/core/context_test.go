package core

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"darwin/internal/dna"
	"darwin/internal/readsim"
)

func simReads(t *testing.T, ref dna.Seq, n int, seed int64) []dna.Seq {
	t.Helper()
	reads, err := readsim.SimulateN(ref, n, readsim.Config{Profile: readsim.PacBio, MeanLen: 1500, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	return seqs
}

// TestMapAllDefaultsWorkers: workers <= 0 must behave like a sensible
// parallel run (one worker per CPU), not zero workers — and produce
// the same results as an explicit single worker.
func TestMapAllDefaultsWorkers(t *testing.T) {
	ref := testGenome(t, 80000, 311)
	d, err := New(ref, DefaultConfig(11, 400, 18))
	if err != nil {
		t.Fatal(err)
	}
	seqs := simReads(t, ref, 12, 312)
	want, err := d.MapAll(seqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, -3} {
		got, err := d.MapAll(seqs, workers)
		if err != nil {
			t.Fatalf("MapAll(workers=%d): %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("MapAll(workers=%d): %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			a, b := Best(got[i].Alignments), Best(want[i].Alignments)
			switch {
			case a == nil && b == nil:
			case a == nil || b == nil:
				t.Fatalf("workers=%d read %d: mapped-ness differs", workers, i)
			case a.Result.Score != b.Result.Score || a.Result.RefStart != b.Result.RefStart:
				t.Fatalf("workers=%d read %d: results differ", workers, i)
			}
		}
		wantWorkers := runtime.NumCPU()
		if wantWorkers > len(seqs) {
			wantWorkers = len(seqs)
		}
		if wantWorkers < 1 {
			wantWorkers = 1
		}
		if g := gWorkers.Value(); g != int64(wantWorkers) {
			t.Errorf("workers=%d: core/workers gauge = %d, want %d", workers, g, wantWorkers)
		}
	}
}

// TestMapAllContextCancelled: an already-cancelled context returns
// immediately with context.Canceled from both the inline and the
// worker-pool paths.
func TestMapAllContextCancelled(t *testing.T) {
	ref := testGenome(t, 60000, 313)
	d, err := New(ref, DefaultConfig(11, 400, 18))
	if err != nil {
		t.Fatal(err)
	}
	seqs := simReads(t, ref, 8, 314)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := d.MapAllContext(ctx, seqs, workers); !errors.Is(err, context.Canceled) {
			t.Errorf("MapAllContext(cancelled, workers=%d) = %v, want context.Canceled", workers, err)
		}
	}
}

// TestMapAllContextMidwayCancel cancels after the first read completes
// and asserts the call reports the cancellation instead of mapping the
// whole set.
func TestMapAllContextMidwayCancel(t *testing.T) {
	ref := testGenome(t, 60000, 315)
	d, err := New(ref, DefaultConfig(11, 400, 18))
	if err != nil {
		t.Fatal(err)
	}
	seqs := simReads(t, ref, 64, 316)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Cancel as soon as the engine has mapped at least one read.
		base := obs_coreReads()
		for obs_coreReads() == base {
			runtime.Gosched()
		}
		cancel()
	}()
	_, err = d.MapAllContext(ctx, seqs, 2)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MapAllContext after midway cancel = %v, want context.Canceled", err)
	}
}

// obs_coreReads reads the pipeline's read counter (test helper).
func obs_coreReads() int64 { return cReads.Value() }
