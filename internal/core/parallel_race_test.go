package core

import (
	"reflect"
	"sync"
	"testing"

	"darwin/internal/dna"
	"darwin/internal/readsim"
)

// stripTimes zeroes the wall-clock fields so stats compare on work
// counts alone (timings are nondeterministic by nature).
func stripTimes(s MapStats) MapStats {
	s.FiltrationTime, s.AlignmentTime = 0, 0
	return s
}

// TestMapAllWorkerCountInvariance maps one read set with 1 and 8
// workers and asserts bit-identical alignments and per-read stats —
// under `go test -race` this also exercises the cloned-engine and
// registry instrumentation paths for data races.
func TestMapAllWorkerCountInvariance(t *testing.T) {
	ref := testGenome(t, 120000, 227)
	d, err := New(ref, DefaultConfig(11, 500, 20))
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(ref, 16, readsim.Config{Profile: readsim.PacBio, MeanLen: 1500, Seed: 228})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}

	serial, err := d.MapAll(seqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := d.MapAll(seqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}

	var aggSerial, aggParallel MapStats
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Alignments, parallel[i].Alignments) {
			t.Errorf("read %d: alignments differ between 1 and 8 workers", i)
		}
		if !reflect.DeepEqual(stripTimes(serial[i].Stats), stripTimes(parallel[i].Stats)) {
			t.Errorf("read %d: stats differ between 1 and 8 workers:\n  %+v\nvs\n  %+v",
				i, stripTimes(serial[i].Stats), stripTimes(parallel[i].Stats))
		}
		aggSerial.Add(serial[i].Stats)
		aggParallel.Add(parallel[i].Stats)
	}
	if !reflect.DeepEqual(stripTimes(aggSerial), stripTimes(aggParallel)) {
		t.Errorf("aggregated stats differ:\n  %+v\nvs\n  %+v", stripTimes(aggSerial), stripTimes(aggParallel))
	}
	if aggSerial.Tiles == 0 || aggSerial.Cells == 0 {
		t.Error("aggregated stats empty — instrumentation lost")
	}
}

// TestClonePerWorkerConcurrentUse exercises the serving pattern: a
// shared warm engine, one long-lived clone per worker, and concurrent
// MapRead traffic interleaved across all clones (the index cache +
// micro-batcher layout of internal/server). Each read's alignments
// and work counts must be byte-identical to mapping it serially on
// the original engine — under `go test -race` this also proves the
// clones share no mutable state.
func TestClonePerWorkerConcurrentUse(t *testing.T) {
	ref := testGenome(t, 100000, 331)
	d, err := New(ref, DefaultConfig(11, 500, 20))
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(ref, 24, readsim.Config{Profile: readsim.PacBio, MeanLen: 1200, Seed: 332})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}

	serialAlns := make([][]ReadAlignment, len(seqs))
	serialStats := make([]MapStats, len(seqs))
	for i, q := range seqs {
		serialAlns[i], serialStats[i] = d.MapRead(q)
	}

	const workers = 6
	gotAlns := make([][]ReadAlignment, len(seqs))
	gotStats := make([]MapStats, len(seqs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		clone, err := d.Clone()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(e *Darwin) {
			defer wg.Done()
			for i := range next {
				// Each clone maps several reads back to back, like a
				// worker draining successive micro-batches.
				gotAlns[i], gotStats[i] = e.MapRead(seqs[i])
			}
		}(clone)
	}
	for i := range seqs {
		next <- i
	}
	close(next)
	wg.Wait()

	for i := range seqs {
		if !reflect.DeepEqual(serialAlns[i], gotAlns[i]) {
			t.Errorf("read %d: alignments differ between serial engine and concurrent clones", i)
		}
		if !reflect.DeepEqual(stripTimes(serialStats[i]), stripTimes(gotStats[i])) {
			t.Errorf("read %d: stats differ between serial engine and concurrent clones:\n  %+v\nvs\n  %+v",
				i, stripTimes(serialStats[i]), stripTimes(gotStats[i]))
		}
	}
}
