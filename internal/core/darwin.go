// Package core is the Darwin engine: the composition of D-SOFT
// filtering and GACT alignment described in Section 5 and Figure 6.
// It provides the two applications the paper evaluates — reference-
// guided read mapping and the overlap step of de novo assembly — with
// per-stage instrumentation feeding the hardware performance model
// (Figure 13, Table 4).
//
// The engine follows the paper's system configuration: seeds from each
// query (forward and reverse complement) feed D-SOFT with B=128 and
// stride 1; high-frequency seeds are discarded by the seed table; each
// candidate bin's last-hit position anchors a GACT first tile of size
// 384 whose score must reach h_tile to survive; surviving candidates
// are extended with (T=320, O=128) tiles.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"darwin/internal/align"
	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/gact"
	"darwin/internal/obs"
	"darwin/internal/seedtable"
)

// Pipeline observability (package obs): per-read roll-ups on top of
// the dsoft/gact package counters. Seed-table construction is the
// stage/index timer (the dominant software cost in the paper's de novo
// accounting); filter and align stage time is recorded by the
// dsoft/gact packages themselves so it is never double-counted here.
var (
	cReads      = obs.Default.Counter("core/reads")
	cAlignments = obs.Default.Counter("core/alignments")
	cUnmapped   = obs.Default.Counter("core/unmapped")
	tIndex      = obs.Default.Timer("stage/index")
	hMapLatency = obs.Default.Histogram("core/map_latency_ms", 0, 2000, 50)
	hCandidates = obs.Default.Histogram("core/candidates_per_read", 0, 512, 64)
)

// Config holds the full Darwin parameter set.
type Config struct {
	// SeedK is the seed size k (Table 4 uses 11-14 depending on the
	// read class).
	SeedK int
	// SeedN is the number of seeds N drawn from each query strand.
	SeedN int
	// SeedStride spaces the N seeds (default 1, the paper's
	// reference-guided setting, sampling the read head densely). The
	// de novo overlap step spreads seeds across the whole read
	// (stride ≈ readLen/N): an overlap can sit at either end of a
	// read, and head-only seeding is blind to tail-side overlaps of
	// reverse-orientation pairs.
	SeedStride int
	// Threshold is the D-SOFT base-count threshold h.
	Threshold int
	// BinSize is the D-SOFT band width B (paper: 128).
	BinSize int
	// HTile is the first-tile score threshold (paper: 90 at first-tile
	// size 384). Zero disables it.
	HTile int
	// GACT holds the tile parameters, scoring, and kernel-tier
	// selection (GACT.Kernel; the zero value enables the bitvector
	// fast path with its bit-identical LUT fallback).
	GACT gact.Config
	// MaxCandidates bounds GACT work per query strand as a safety
	// valve against pathological repeat regions. Zero means no bound.
	MaxCandidates int
	// TableOptions configures seed-table masking.
	TableOptions seedtable.Options
}

// DefaultConfig returns the paper's system defaults with the given
// D-SOFT tuning knobs (k, N, h); Table 4 lists the per-read-class
// values, e.g. (14, 750, 24) for PacBio reference-guided assembly.
func DefaultConfig(k, n, h int) Config {
	g := gact.DefaultConfig()
	return Config{
		SeedK:         k,
		SeedN:         n,
		Threshold:     h,
		BinSize:       128,
		HTile:         90,
		GACT:          g,
		MaxCandidates: 256,
		TableOptions:  seedtable.DefaultOptions(),
	}
}

// Mapper is the read-mapping surface shared by the monolithic engine
// (Darwin) and the sharded scatter-gather mapper (internal/shard): one
// read or a batch in, score-sorted alignments in global reference
// coordinates out, bit-identical across the two implementations.
// Construct one with Open, which selects the implementation from
// shard geometry; the serving layer holds this interface so an index
// cache entry can be backed by either engine.
//
// The surface splits into three concerns:
//
//   - Mapping: Map is the primary batch entrypoint (context-first,
//     functional options); MapRead maps a single read inline on the
//     receiver. MapAll/MapAllContext remain for compatibility only.
//   - Concurrency: CloneMapper derives an engine that shares the
//     immutable index (seed tables, reference bytes) but owns private
//     mutable scratch — D-SOFT bin state, GACT traceback, candidate
//     buffers — so clones map concurrently without locks. This
//     mirrors the hardware split between replicated read-only DRAM
//     seed tables and per-array SRAM.
//   - Introspection: Ref exposes the indexed (concatenated)
//     reference; IndexBuildTime reports cumulative index-construction
//     time, the one-time cost the paper's Table 3 separates from
//     per-read work (for a sharded mapper it grows as shards are
//     (re)built on demand).
type Mapper interface {
	// MapRead maps one read, both strands; alignments are sorted by
	// SortAlignments order.
	MapRead(q dna.Seq) ([]ReadAlignment, MapStats)
	// Map maps every read under ctx, results in input order. Options:
	// WithWorkers, WithDeadlinePerRead, WithProgress. Per-read
	// failures land in MapResult.Err; batch-level failures (cancelled
	// context) are returned as the error.
	Map(ctx context.Context, reads []dna.Seq, options ...MapOption) ([]MapResult, error)
	// MapAll maps every read with the given worker parallelism.
	//
	// Deprecated: use Map with WithWorkers.
	MapAll(reads []dna.Seq, workers int) ([]MapResult, error)
	// MapAllContext is MapAll with cancellation between reads.
	//
	// Deprecated: use Map with WithWorkers.
	MapAllContext(ctx context.Context, reads []dna.Seq, workers int) ([]MapResult, error)
	// CloneMapper returns an engine sharing immutable index state but
	// with private mutable scratch, safe for another goroutine.
	CloneMapper() (Mapper, error)
	// Ref returns the indexed (concatenated) reference sequence.
	Ref() dna.Seq
	// IndexBuildTime reports cumulative index-construction time.
	IndexBuildTime() time.Duration
}

// SortAlignments orders alignments deterministically: descending
// score, then ascending reference span, query span, and finally
// forward before reverse strand. Every mapper output passes through
// this one sort, so results are bit-stable across worker counts and
// shard counts (equal-score ties used to fall in goroutine-scheduling
// order under a non-stable sort).
func SortAlignments(alns []ReadAlignment) {
	sort.SliceStable(alns, func(a, b int) bool {
		x, y := &alns[a], &alns[b]
		if x.Result.Score != y.Result.Score {
			return x.Result.Score > y.Result.Score
		}
		if x.Result.RefStart != y.Result.RefStart {
			return x.Result.RefStart < y.Result.RefStart
		}
		if x.Result.RefEnd != y.Result.RefEnd {
			return x.Result.RefEnd < y.Result.RefEnd
		}
		if x.Result.QueryStart != y.Result.QueryStart {
			return x.Result.QueryStart < y.Result.QueryStart
		}
		return !x.Reverse && y.Reverse
	})
}

// Darwin maps queries against one reference.
type Darwin struct {
	ref    dna.Seq
	table  *seedtable.Table
	filter *dsoft.Filter
	engine *gact.Engine
	cfg    Config

	// Per-engine scratch, reused across reads so the steady-state map
	// loop allocates only its results: the D-SOFT candidate buffer and
	// the reverse-complement query buffer. Clones get fresh scratch
	// (see Clone), so engines never share mutable state.
	cands  []dsoft.Candidate
	revBuf dna.Seq

	// TableBuildTime records seed-table construction (software-side in
	// the paper's de novo accounting).
	TableBuildTime time.Duration
}

// New indexes the reference and returns an engine.
func New(ref dna.Seq, cfg Config) (*Darwin, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	start := time.Now()
	if err := fpIndexBuild.Fire(); err != nil {
		return nil, fmt.Errorf("core: building seed table: %w", err)
	}
	endSpan := obs.Trace.Start("core.index")
	table, err := seedtable.Build(ref, cfg.SeedK, cfg.TableOptions)
	endSpan()
	if err != nil {
		return nil, fmt.Errorf("core: building seed table: %w", err)
	}
	buildTime := time.Since(start)
	tIndex.Observe(buildTime)
	stride := cfg.SeedStride
	if stride < 1 {
		stride = 1
	}
	filter, err := dsoft.New(table, dsoft.Config{
		N:       cfg.SeedN,
		H:       cfg.Threshold,
		BinSize: cfg.BinSize,
		Stride:  stride,
	})
	if err != nil {
		return nil, fmt.Errorf("core: configuring D-SOFT: %w", err)
	}
	g := cfg.GACT
	g.MinFirstTile = cfg.HTile
	cfg.GACT = g
	engine, err := gact.NewEngine(&cfg.GACT)
	if err != nil {
		return nil, fmt.Errorf("core: configuring GACT: %w", err)
	}
	return &Darwin{ref: ref, table: table, filter: filter, engine: engine, cfg: cfg, TableBuildTime: buildTime}, nil
}

// NewWithTable assembles an engine around a prebuilt seed table — the
// path a persistent index load takes (internal/indexio): the table's
// storage is a view over mapped file bytes, so no build pass runs, the
// stage/index timer never fires, and TableBuildTime stays zero. The
// table must describe exactly this reference under this configuration;
// only the structural invariants are checked here (the index loader
// owns content integrity via its checksums).
func NewWithTable(ref dna.Seq, table *seedtable.Table, cfg Config) (*Darwin, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("core: empty reference")
	}
	if table == nil {
		return nil, fmt.Errorf("core: nil seed table")
	}
	if table.K() != cfg.SeedK {
		return nil, fmt.Errorf("core: seed table k=%d but config k=%d", table.K(), cfg.SeedK)
	}
	if table.RefLen() != len(ref) {
		return nil, fmt.Errorf("core: seed table covers %d bases but reference has %d", table.RefLen(), len(ref))
	}
	stride := cfg.SeedStride
	if stride < 1 {
		stride = 1
	}
	filter, err := dsoft.New(table, dsoft.Config{
		N:       cfg.SeedN,
		H:       cfg.Threshold,
		BinSize: cfg.BinSize,
		Stride:  stride,
	})
	if err != nil {
		return nil, fmt.Errorf("core: configuring D-SOFT: %w", err)
	}
	g := cfg.GACT
	g.MinFirstTile = cfg.HTile
	cfg.GACT = g
	engine, err := gact.NewEngine(&cfg.GACT)
	if err != nil {
		return nil, fmt.Errorf("core: configuring GACT: %w", err)
	}
	return &Darwin{ref: ref, table: table, filter: filter, engine: engine, cfg: cfg}, nil
}

// Ref returns the indexed reference.
func (d *Darwin) Ref() dna.Seq { return d.ref }

// Table returns the underlying seed table (for statistics).
func (d *Darwin) Table() *seedtable.Table { return d.table }

// Config returns the engine configuration.
func (d *Darwin) Config() Config { return d.cfg }

// ReadAlignment is one alignment of a query to the reference.
type ReadAlignment struct {
	// Result holds the alignment in forward-reference coordinates.
	// For Reverse alignments, query coordinates refer to the
	// reverse-complemented query.
	Result align.Result
	// Reverse marks reverse-complement strand alignments.
	Reverse bool
	// FirstTileScore is the candidate's first GACT tile score.
	FirstTileScore int
}

// MapStats instruments one MapRead call for the performance model and
// the Figure 13 breakdown.
type MapStats struct {
	// DSOFT aggregates filter work across both strands.
	DSOFT dsoft.Stats
	// Candidates is the number of candidate bins D-SOFT emitted.
	Candidates int
	// PassedHTile counts candidates surviving the first-tile filter.
	PassedHTile int
	// Tiles is the total number of GACT tiles processed.
	Tiles int
	// Cells is the total DP cells filled by GACT.
	Cells int64
	// FirstTileScores records each candidate's first-tile score
	// (Figure 12's histogram input).
	FirstTileScores []int
	// FiltrationTime and AlignmentTime split the software runtime.
	FiltrationTime, AlignmentTime time.Duration
}

func (s *MapStats) add(o MapStats) {
	s.DSOFT.Add(o.DSOFT)
	s.Candidates += o.Candidates
	s.PassedHTile += o.PassedHTile
	s.Tiles += o.Tiles
	s.Cells += o.Cells
	s.FirstTileScores = append(s.FirstTileScores, o.FirstTileScores...)
	s.FiltrationTime += o.FiltrationTime
	s.AlignmentTime += o.AlignmentTime
}

// Add accumulates another call's statistics (exported aggregation so
// callers never hand-sum fields; see the reflection test).
func (s *MapStats) Add(o MapStats) { s.add(o) }

// MapRead maps a read against the reference, querying both strands
// (Figure 6: "the forward and reverse-complement of P reads are used
// as queries"). Alignments are sorted by descending score.
func (d *Darwin) MapRead(q dna.Seq) ([]ReadAlignment, MapStats) {
	endSpan := obs.Trace.Start("core.map_read")
	start := time.Now()
	var out []ReadAlignment
	var stats MapStats
	for _, rev := range []bool{false, true} {
		query := q
		if rev {
			d.revBuf = dna.AppendRevComp(d.revBuf[:0], q)
			query = d.revBuf
		}
		alns, st := d.mapStrand(query, rev)
		out = append(out, alns...)
		stats.add(st)
	}
	SortAlignments(out)
	cReads.Inc()
	cAlignments.Add(int64(len(out)))
	if len(out) == 0 {
		cUnmapped.Inc()
	}
	hCandidates.Observe(float64(stats.Candidates))
	hMapLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	endSpan()
	return out, stats
}

// mapStrand runs the Fig. 6 pipeline for one oriented query.
func (d *Darwin) mapStrand(query dna.Seq, rev bool) ([]ReadAlignment, MapStats) {
	var stats MapStats
	start := time.Now()
	cands, dst := d.filter.QueryInto(query, d.cands[:0])
	d.cands = cands
	stats.DSOFT = dst
	stats.Candidates = len(cands)
	stats.FiltrationTime = time.Since(start)

	if d.cfg.MaxCandidates > 0 && len(cands) > d.cfg.MaxCandidates {
		cands = cands[:d.cfg.MaxCandidates]
	}

	start = time.Now()
	var out []ReadAlignment
	for _, c := range cands {
		res, gst, err := d.engine.Extend(d.ref, query, c.RefPos, c.QueryPos)
		if err != nil {
			continue // invalid anchor geometry; candidate is unusable
		}
		stats.Tiles += gst.Tiles
		stats.Cells += gst.Cells
		stats.FirstTileScores = append(stats.FirstTileScores, gst.FirstTileScore)
		if res == nil {
			continue
		}
		stats.PassedHTile++
		out = append(out, ReadAlignment{Result: *res, Reverse: rev, FirstTileScore: gst.FirstTileScore})
	}
	stats.AlignmentTime = time.Since(start)
	return out, stats
}

// mapStrandClipped is mapStrand with each candidate's GACT extension
// restricted to a reference window: window(refPos) returns the target
// segment id and its [lo, hi) bounds; candidates whose target equals
// skipRead are dropped (a read's trivial self-hit in the de novo
// concatenated reference). Returned coordinates are global.
func (d *Darwin) mapStrandClipped(query dna.Seq, rev bool, window func(refPos int) (int, int, int), skipRead int) ([]ReadAlignment, MapStats) {
	var stats MapStats
	start := time.Now()
	cands, dst := d.filter.QueryInto(query, d.cands[:0])
	d.cands = cands
	stats.DSOFT = dst
	stats.Candidates = len(cands)
	stats.FiltrationTime = time.Since(start)

	if d.cfg.MaxCandidates > 0 && len(cands) > d.cfg.MaxCandidates {
		cands = cands[:d.cfg.MaxCandidates]
	}

	start = time.Now()
	var out []ReadAlignment
	for _, c := range cands {
		target, lo, hi := window(c.RefPos)
		if target == skipRead || c.RefPos >= hi {
			continue
		}
		res, gst, err := d.engine.Extend(d.ref[lo:hi], query, c.RefPos-lo, c.QueryPos)
		if err != nil {
			continue
		}
		stats.Tiles += gst.Tiles
		stats.Cells += gst.Cells
		stats.FirstTileScores = append(stats.FirstTileScores, gst.FirstTileScore)
		if res == nil {
			continue
		}
		stats.PassedHTile++
		res.RefStart += lo
		res.RefEnd += lo
		out = append(out, ReadAlignment{Result: *res, Reverse: rev, FirstTileScore: gst.FirstTileScore})
	}
	stats.AlignmentTime = time.Since(start)
	return out, stats
}

// Best returns the highest-scoring alignment, or nil.
func Best(alns []ReadAlignment) *ReadAlignment {
	if len(alns) == 0 {
		return nil
	}
	return &alns[0]
}
