package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"darwin/internal/dna"
	"darwin/internal/obs"
)

// Overlap-step observability: overlap/reads_done advances once per
// queried read (both strands), which is what drives -progress in
// cmd/darwin-overlap; filter/align time lands in the shared stage
// timers via the dsoft/gact packages.
var (
	cOverlapReads = obs.Default.Counter("overlap/reads_done")
	cOverlapsOut  = obs.Default.Counter("overlap/overlaps_found")
)

// Overlap is a detected pairwise overlap between two reads in the
// de novo overlap step (Figure 6, right).
type Overlap struct {
	// Target is the read found in the concatenated reference; Query is
	// the read used as the D-SOFT/GACT query.
	Target, Query int
	// QueryRev is true if the reverse complement of the query read
	// produced the overlap.
	QueryRev bool
	// TargetStart, TargetEnd delimit the overlap on the target read.
	TargetStart, TargetEnd int
	// QueryStart, QueryEnd delimit the overlap on the query read (in
	// reverse-complement coordinates when QueryRev).
	QueryStart, QueryEnd int
	// Score is the GACT alignment score.
	Score int
}

// Pair returns the unordered read pair.
func (o *Overlap) Pair() (int, int) {
	if o.Target < o.Query {
		return o.Target, o.Query
	}
	return o.Query, o.Target
}

// Len returns the overlap length on the target read.
func (o *Overlap) Len() int { return o.TargetEnd - o.TargetStart }

// Overlapper runs the overlap step of de novo assembly: reads are
// concatenated (each padded with N to a whole number of D-SOFT bins,
// Section 5) to form the reference, and every read is queried against
// it in both orientations.
type Overlapper struct {
	darwin  *Darwin
	reads   []dna.Seq
	offsets []int // start of each read in the concatenated reference
}

// OverlapStats aggregates the pipeline statistics of an overlap run.
type OverlapStats struct {
	// Map aggregates MapStats across all reads.
	Map MapStats
	// TableBuildTime is the software-side seed-table construction time
	// (the dominant software cost in the paper's de novo accounting:
	// 370 of 385 seconds for C. elegans).
	TableBuildTime time.Duration
}

// NewOverlapper builds the concatenated reference and indexes it.
func NewOverlapper(reads []dna.Seq, cfg Config) (*Overlapper, error) {
	if len(reads) == 0 {
		return nil, fmt.Errorf("core: no reads to overlap")
	}
	B := cfg.BinSize
	if B <= 0 {
		return nil, fmt.Errorf("core: bin size must be positive")
	}
	total := 0
	for _, r := range reads {
		pad := B - len(r)%B
		total += len(r) + pad
	}
	ref := make(dna.Seq, 0, total)
	offsets := make([]int, len(reads))
	for i, r := range reads {
		offsets[i] = len(ref)
		ref = append(ref, r...)
		pad := B - len(r)%B
		for p := 0; p < pad; p++ {
			ref = append(ref, 'N')
		}
	}
	d, err := New(ref, cfg)
	if err != nil {
		return nil, err
	}
	return &Overlapper{darwin: d, reads: reads, offsets: offsets}, nil
}

// readAt returns the index of the read containing reference position p.
func (o *Overlapper) readAt(p int) int {
	i := sort.SearchInts(o.offsets, p+1) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// FindOverlaps queries every read against the concatenated reference
// and returns deduplicated overlaps of at least minOverlap bases.
// Each GACT extension is clipped to the segment of the read its
// candidate falls in: N padding contributes nothing to scores (the
// hardware's Σext semantics), so an unclipped extension would silently
// bridge adjacent reads and misattribute the overlap.
func (o *Overlapper) FindOverlaps(minOverlap int) ([]Overlap, OverlapStats) {
	out, stats, _ := o.FindOverlapsContext(context.Background(), minOverlap)
	return out, stats
}

// FindOverlapsContext is FindOverlaps with cooperative cancellation:
// ctx is checked between reads (each read is the unit of work, so
// cancellation latency is one read's overlap pass). On cancellation it
// returns the overlaps found so far together with ctx.Err(), so a
// partial run still yields usable output.
func (o *Overlapper) FindOverlapsContext(ctx context.Context, minOverlap int) ([]Overlap, OverlapStats, error) {
	return o.FindOverlapsResumable(ctx, minOverlap, nil, 0, nil)
}

// OverlapCheckpoint is a resumable snapshot of an overlap pass taken
// at a read boundary: every read below NextRead has been queried (both
// strands) and Overlaps holds the best overlap per (pair, orientation)
// seen so far in canonical order. Because reads are processed in index
// order and deduplication keeps only the best-scoring overlap per key,
// resuming from a checkpoint yields output bit-identical to an
// uninterrupted run.
type OverlapCheckpoint struct {
	// NextRead is the first read index not yet processed.
	NextRead int
	// Overlaps is the deduplicated best-so-far set, in the same
	// canonical order FindOverlaps returns.
	Overlaps []Overlap
}

// Done reports whether the checkpoint covers all n reads.
func (c *OverlapCheckpoint) Done(n int) bool { return c != nil && c.NextRead >= n }

// overlapKey identifies one deduplication slot: an unordered read pair
// in one relative orientation.
type overlapKey struct {
	a, b int
	rev  bool
}

func keyOf(ov *Overlap) overlapKey {
	lo, hi := ov.Pair()
	return overlapKey{lo, hi, ov.QueryRev}
}

// FindOverlapsResumable is FindOverlapsContext with checkpointing:
// when resume is non-nil, reads below resume.NextRead are skipped and
// the deduplication state is rebuilt from resume.Overlaps; when save
// is non-nil it receives a fresh checkpoint every `every` reads (and
// once more on cancellation, so an interrupted pass always leaves its
// latest read boundary behind). A non-nil error from save aborts the
// pass — callers that want best-effort checkpointing swallow the
// error in the callback.
func (o *Overlapper) FindOverlapsResumable(ctx context.Context, minOverlap int, resume *OverlapCheckpoint, every int, save func(OverlapCheckpoint) error) ([]Overlap, OverlapStats, error) {
	return o.Run(ctx, OverlapRun{
		MinOverlap:      minOverlap,
		Resume:          resume,
		CheckpointEvery: every,
		Save:            save,
	})
}

// OverlapRun configures one overlap pass: the reporting threshold plus
// the optional resume point, checkpoint cadence, and progress hook.
type OverlapRun struct {
	// MinOverlap is the minimum reported overlap length on the target
	// read.
	MinOverlap int
	// Resume, when non-nil, restarts the pass at Resume.NextRead with
	// the deduplication state rebuilt from Resume.Overlaps.
	Resume *OverlapCheckpoint
	// CheckpointEvery is how many reads between Save calls (0 disables
	// periodic saves; a cancellation save still fires when Save is set).
	CheckpointEvery int
	// Save receives checkpoints. A non-nil return aborts the pass with
	// that error; best-effort checkpointing swallows errors inside the
	// callback.
	Save func(OverlapCheckpoint) error
	// Progress, when non-nil, is called after each read completes with
	// the cumulative count (including reads skipped via Resume).
	Progress func(done, total int)
}

// Run executes the overlap pass described by r. Stats cover only the
// reads processed by this call: a resumed pass reports the remaining
// work, not the pre-checkpoint history.
func (o *Overlapper) Run(ctx context.Context, r OverlapRun) ([]Overlap, OverlapStats, error) {
	stats := OverlapStats{TableBuildTime: o.darwin.TableBuildTime}
	var ctxErr error
	best := map[overlapKey]Overlap{}
	startRead := 0
	if r.Resume != nil {
		if r.Resume.NextRead > 0 {
			startRead = r.Resume.NextRead
		}
		for i := range r.Resume.Overlaps {
			ov := r.Resume.Overlaps[i]
			k := keyOf(&ov)
			if cur, ok := best[k]; !ok || ov.Score > cur.Score {
				best[k] = ov
			}
		}
	}
	minOverlap := r.MinOverlap
	snapshot := func(nextRead int) OverlapCheckpoint {
		return OverlapCheckpoint{NextRead: nextRead, Overlaps: collectOverlaps(best)}
	}
	for q := startRead; q < len(o.reads); q++ {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			// A final checkpoint at the cancellation boundary: read q has
			// not been processed, so the interrupted pass resumes there.
			if r.Save != nil {
				if serr := r.Save(snapshot(q)); serr != nil {
					ctxErr = serr
				}
			}
			break
		}
		endSpan := obs.Trace.Start("overlap.read")
		for _, rev := range []bool{false, true} {
			query := o.reads[q]
			if rev {
				query = dna.RevComp(query)
			}
			alns, st := o.darwin.mapStrandClipped(query, rev, func(refPos int) (int, int, int) {
				t := o.readAt(refPos)
				return t, o.offsets[t], o.offsets[t] + len(o.reads[t])
			}, q)
			stats.Map.add(st)
			for _, a := range alns {
				target := o.readAt(a.Result.RefStart)
				tStart := a.Result.RefStart - o.offsets[target]
				tEnd := min(a.Result.RefEnd-o.offsets[target], len(o.reads[target]))
				if tEnd-tStart < minOverlap {
					continue
				}
				ov := Overlap{
					Target:      target,
					Query:       q,
					QueryRev:    a.Reverse,
					TargetStart: tStart,
					TargetEnd:   tEnd,
					QueryStart:  a.Result.QueryStart,
					QueryEnd:    a.Result.QueryEnd,
					Score:       a.Result.Score,
				}
				k := keyOf(&ov)
				if cur, ok := best[k]; !ok || ov.Score > cur.Score {
					best[k] = ov
				}
			}
		}
		endSpan()
		cOverlapReads.Inc()
		if r.Progress != nil {
			r.Progress(q+1, len(o.reads))
		}
		if r.Save != nil && r.CheckpointEvery > 0 && (q+1)%r.CheckpointEvery == 0 && q+1 < len(o.reads) {
			if serr := r.Save(snapshot(q + 1)); serr != nil {
				return collectOverlaps(best), stats, serr
			}
		}
	}
	out := collectOverlaps(best)
	cOverlapsOut.Add(int64(len(out)))
	return out, stats, ctxErr
}

// collectOverlaps flattens the deduplication map into the canonical
// output order: unordered pair ascending, forward orientation first.
// The map is keyed by (pair, orientation), so this order is total and
// the output is deterministic regardless of map iteration order.
func collectOverlaps(best map[overlapKey]Overlap) []Overlap {
	out := make([]Overlap, 0, len(best))
	for _, ov := range best {
		out = append(out, ov)
	}
	sort.Slice(out, func(a, b int) bool {
		pa1, pa2 := out[a].Pair()
		pb1, pb2 := out[b].Pair()
		if pa1 != pb1 {
			return pa1 < pb1
		}
		if pa2 != pb2 {
			return pa2 < pb2
		}
		return !out[a].QueryRev && out[b].QueryRev
	})
	return out
}

// NumReads returns the number of reads the overlapper was built over.
func (o *Overlapper) NumReads() int { return len(o.reads) }

// Reads returns the read set the overlapper indexes (shared, not a
// copy — callers must not mutate).
func (o *Overlapper) Reads() []dna.Seq { return o.reads }
