package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/gact"
	"darwin/internal/obs"
)

// MapAll observability: the worker gauge plus a busy-time timer, so
// utilization = core/worker_busy seconds / (wall × core/workers) is
// derivable from any run report.
var (
	gWorkers    = obs.Default.Gauge("core/workers")
	tWorkerBusy = obs.Default.Timer("core/worker_busy")
)

// Clone returns an engine sharing this one's (immutable) seed table
// but with private D-SOFT bin state, a private GACT kernel, and fresh
// scratch buffers, safe to use from another goroutine. This mirrors
// the hardware, where the seed tables are replicated read-only across
// DRAM channels while each query stream owns its bin-count SRAM and
// each GACT array its traceback SRAM.
func (d *Darwin) Clone() (*Darwin, error) {
	stride := d.cfg.SeedStride
	if stride < 1 {
		stride = 1
	}
	filter, err := dsoft.New(d.table, dsoft.Config{
		N:       d.cfg.SeedN,
		H:       d.cfg.Threshold,
		BinSize: d.cfg.BinSize,
		Stride:  stride,
	})
	if err != nil {
		return nil, fmt.Errorf("core: cloning filter: %w", err)
	}
	engine, err := gact.NewEngine(&d.cfg.GACT)
	if err != nil {
		return nil, fmt.Errorf("core: cloning GACT engine: %w", err)
	}
	clone := *d
	clone.filter = filter
	clone.engine = engine
	clone.cands = nil
	clone.revBuf = nil
	return &clone, nil
}

// CloneMapper implements the Mapper interface over Clone.
func (d *Darwin) CloneMapper() (Mapper, error) { return d.Clone() }

// IndexBuildTime implements the Mapper interface (seed-table
// construction time).
func (d *Darwin) IndexBuildTime() time.Duration { return d.TableBuildTime }

// MapResult pairs one read's alignments with its index and statistics.
type MapResult struct {
	// Index is the read's position in the input slice.
	Index int
	// Alignments are sorted by descending score.
	Alignments []ReadAlignment
	// Stats instruments the read's mapping.
	Stats MapStats
}

// MapAll maps every read using the given number of worker goroutines
// (1 runs inline; <= 0 defaults to runtime.NumCPU()). Results are
// returned in input order; workers use cloned engines so bin state
// never races.
func (d *Darwin) MapAll(reads []dna.Seq, workers int) ([]MapResult, error) {
	return d.MapAllContext(context.Background(), reads, workers)
}

// MapAllContext is MapAll with cancellation: it stops dispatching new
// reads once ctx is cancelled or its deadline passes, waits for
// in-flight reads to finish, and returns ctx.Err(). A read that has
// already entered the pipeline always completes — cancellation is
// checked between reads, the granularity a served request can be
// abandoned at without corrupting shared engine state.
func (d *Darwin) MapAllContext(ctx context.Context, reads []dna.Seq, workers int) ([]MapResult, error) {
	if workers <= 0 {
		// A zero or negative worker count is a configuration accident,
		// not a request for zero concurrency: default to one worker per
		// CPU rather than silently running single-threaded.
		workers = runtime.NumCPU()
	}
	if workers > len(reads) {
		workers = len(reads)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]MapResult, len(reads))
	if workers <= 1 || len(reads) <= 1 {
		gWorkers.Set(1)
		for i, r := range reads {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			busy := time.Now()
			alns, st := d.MapRead(r)
			tWorkerBusy.Observe(time.Since(busy))
			out[i] = MapResult{Index: i, Alignments: alns, Stats: st}
		}
		return out, nil
	}
	gWorkers.Set(int64(workers))
	engines := make([]*Darwin, workers)
	for w := range engines {
		e, err := d.Clone()
		if err != nil {
			return nil, err
		}
		engines[w] = e
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(e *Darwin, tid int) {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain remaining indices without mapping
				}
				endSpan := obs.Trace.StartTID("core.map_read.worker", tid)
				busy := time.Now()
				alns, st := e.MapRead(reads[i])
				tWorkerBusy.Observe(time.Since(busy))
				endSpan()
				out[i] = MapResult{Index: i, Alignments: alns, Stats: st}
			}
		}(engines[w], w+1)
	}
feed:
	for i := range reads {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
