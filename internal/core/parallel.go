package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/gact"
	"darwin/internal/obs"
)

// MapAll observability: the worker gauge plus a busy-time timer, so
// utilization = core/worker_busy seconds / (wall × core/workers) is
// derivable from any run report.
var (
	gWorkers    = obs.Default.Gauge("core/workers")
	tWorkerBusy = obs.Default.Timer("core/worker_busy")
	cReadPanics = obs.Default.Counter("core/read_panics")
	cReadExpiry = obs.Default.Counter("core/read_deadline_expired")
)

// Clone returns an engine sharing this one's (immutable) seed table
// but with private D-SOFT bin state, a private GACT kernel, and fresh
// scratch buffers, safe to use from another goroutine. This mirrors
// the hardware, where the seed tables are replicated read-only across
// DRAM channels while each query stream owns its bin-count SRAM and
// each GACT array its traceback SRAM.
//
// Clone reads only fields that are immutable after New (reference,
// seed table, config, build time) — never the mutable scratch — so it
// is safe to call even while another goroutine is still mapping on
// the receiver. The per-read deadline watchdog relies on this: an
// abandoned read's goroutine may keep mutating its engine's scratch,
// and the worker recovers by cloning a fresh engine from the original.
func (d *Darwin) Clone() (*Darwin, error) {
	stride := d.cfg.SeedStride
	if stride < 1 {
		stride = 1
	}
	filter, err := dsoft.New(d.table, dsoft.Config{
		N:       d.cfg.SeedN,
		H:       d.cfg.Threshold,
		BinSize: d.cfg.BinSize,
		Stride:  stride,
	})
	if err != nil {
		return nil, fmt.Errorf("core: cloning filter: %w", err)
	}
	engine, err := gact.NewEngine(&d.cfg.GACT)
	if err != nil {
		return nil, fmt.Errorf("core: cloning GACT engine: %w", err)
	}
	return &Darwin{
		ref:            d.ref,
		table:          d.table,
		filter:         filter,
		engine:         engine,
		cfg:            d.cfg,
		TableBuildTime: d.TableBuildTime,
	}, nil
}

// CloneMapper implements the Mapper interface over Clone.
func (d *Darwin) CloneMapper() (Mapper, error) { return d.Clone() }

// IndexBuildTime implements the Mapper interface (seed-table
// construction time).
func (d *Darwin) IndexBuildTime() time.Duration { return d.TableBuildTime }

// MapResult pairs one read's alignments with its index and statistics.
type MapResult struct {
	// Index is the read's position in the input slice.
	Index int
	// Alignments are sorted by descending score.
	Alignments []ReadAlignment
	// Stats instruments the read's mapping.
	Stats MapStats
	// Err is set when this read individually failed — it panicked
	// mid-pipeline, blew its per-read deadline (wraps
	// context.DeadlineExceeded), or hit an injected fault — while the
	// rest of the batch completed normally. A batch-level failure
	// (cancelled context, clone failure) is returned by Map itself.
	Err error
}

// MapSettings is the resolved option set for one Map call. Mapper
// implementations outside this package (internal/shard) interpret
// options through ResolveMapOptions, so the two engines read one
// option vocabulary.
type MapSettings struct {
	// Workers is the worker-goroutine count (0 = one per CPU).
	Workers int
	// DeadlinePerRead bounds one read's wall-clock mapping time
	// (0 = unbounded).
	DeadlinePerRead time.Duration
	// Progress, when non-nil, is invoked after each read completes.
	Progress func(done, total int)
}

// MapOption configures a Map call.
type MapOption func(*MapSettings)

// ResolveMapOptions folds options into a MapSettings.
func ResolveMapOptions(options []MapOption) MapSettings {
	var o MapSettings
	for _, opt := range options {
		opt(&o)
	}
	return o
}

// WithWorkers sets the number of worker goroutines. 1 runs inline on
// the receiver; <= 0 (and the default) uses one worker per CPU.
// Workers beyond len(reads) are not spawned.
func WithWorkers(n int) MapOption {
	return func(o *MapSettings) { o.Workers = n }
}

// WithDeadlinePerRead bounds each individual read's wall-clock mapping
// time. A read that exceeds the budget gets MapResult.Err wrapping
// context.DeadlineExceeded while the rest of the batch proceeds: the
// stuck read's goroutine is abandoned (it cannot be interrupted
// mid-DP-tile) and its worker continues on a freshly cloned engine, so
// one pathological read costs one engine clone, never the batch. (The
// sharded mapper instead checks the budget cooperatively between
// candidate extensions — its deadline granularity is one GACT
// extension, not one tile.) Zero or negative disables the bound (the
// default).
func WithDeadlinePerRead(d time.Duration) MapOption {
	return func(o *MapSettings) { o.DeadlinePerRead = d }
}

// WithProgress registers a callback invoked after each read completes
// with (reads done so far, total reads). Calls are serialized; the
// callback must be fast — it runs on the mapping workers' critical
// path.
func WithProgress(fn func(done, total int)) MapOption {
	return func(o *MapSettings) { o.Progress = fn }
}

// ProgressSink serializes WithProgress callbacks across workers. A nil
// *ProgressSink is valid and does nothing, so callers can construct
// one only when a callback was given.
type ProgressSink struct {
	mu    sync.Mutex
	fn    func(done, total int)
	done  int
	total int
}

// NewProgressSink returns a sink for fn over total reads, or nil when
// fn is nil.
func NewProgressSink(fn func(done, total int), total int) *ProgressSink {
	if fn == nil {
		return nil
	}
	return &ProgressSink{fn: fn, total: total}
}

// Step records one completed read and invokes the callback.
func (p *ProgressSink) Step() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.fn(p.done, p.total)
	p.mu.Unlock()
}

// readOutcome is one guarded read's result.
type readOutcome struct {
	alns []ReadAlignment
	st   MapStats
	err  error
}

// finishReadSpan closes one read's trace span: work attributes from
// the read's MapStats, plus synthesized stage/filter and stage/align
// children carrying the same per-read durations the Registry's stage
// timers aggregate — so a captured tree splits one read's latency the
// same way the process-wide timers split the fleet's. The filter span
// is anchored at the read's start and the align span immediately
// after it, matching the pipeline's actual phase order.
func finishReadSpan(sp *obs.Span, busy time.Time, oc readOutcome) {
	st := oc.st
	sp.SetAttr("candidates", int64(st.Candidates))
	sp.SetAttr("passed_htile", int64(st.PassedHTile))
	sp.SetAttr("tiles", int64(st.Tiles))
	sp.SetAttr("cells", st.Cells)
	sp.SetAttr("alignments", int64(len(oc.alns)))
	if oc.err != nil {
		sp.SetAttr("failed", 1)
	}
	sp.AddTimedChild("stage/filter", busy, st.FiltrationTime)
	sp.AddTimedChild("stage/align", busy.Add(st.FiltrationTime), st.AlignmentTime)
	sp.End()
}

// mapReadRecovered maps one read with panic isolation: a panic
// anywhere in the filter/extend pipeline (or injected at the
// core/map_read fault point) becomes this read's Err instead of
// killing the worker. The fault point fires inside the recover scope
// so injected panics exercise the same containment as organic ones.
func mapReadRecovered(e *Darwin, q dna.Seq) (out readOutcome) {
	defer func() {
		if r := recover(); r != nil {
			cReadPanics.Inc()
			out = readOutcome{err: fmt.Errorf("core: read mapping panicked: %v", r)}
		}
	}()
	if err := fpMapRead.Fire(); err != nil {
		return readOutcome{err: err}
	}
	alns, st := e.MapRead(q)
	return readOutcome{alns: alns, st: st}
}

// runRead maps one read under an optional wall-clock budget. With no
// budget it runs inline. With a budget it runs under a watchdog: on
// expiry the read's goroutine is abandoned (reported via abandoned so
// the caller retires the engine — its scratch may still be mutated by
// the stray goroutine) and the read fails with a deadline error.
func runRead(e *Darwin, q dna.Seq, budget time.Duration) (out readOutcome, abandoned bool) {
	if budget <= 0 {
		return mapReadRecovered(e, q), false
	}
	ch := make(chan readOutcome, 1)
	go func() { ch <- mapReadRecovered(e, q) }()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o, false
	case <-timer.C:
		cReadExpiry.Inc()
		return readOutcome{err: fmt.Errorf("core: read exceeded per-read deadline %v: %w", budget, context.DeadlineExceeded)}, true
	}
}

// Map maps every read, in input order, under ctx. It is the primary
// batch entrypoint; MapAll and MapAllContext are deprecated wrappers
// over it.
//
// Cancellation is checked between reads — a read that has entered the
// pipeline always completes (unless WithDeadlinePerRead abandons it),
// the granularity a served request can be dropped at without
// corrupting shared engine state. On cancellation Map returns
// ctx.Err() and no results.
//
// Per-read failures (panics, per-read deadline expiry, injected
// faults) are confined to that read's MapResult.Err; the rest of the
// batch completes normally.
func (d *Darwin) Map(ctx context.Context, reads []dna.Seq, options ...MapOption) ([]MapResult, error) {
	o := ResolveMapOptions(options)
	workers := o.Workers
	if workers <= 0 {
		// A zero or negative worker count is a configuration accident,
		// not a request for zero concurrency: default to one worker per
		// CPU rather than silently running single-threaded.
		workers = runtime.NumCPU()
	}
	if workers > len(reads) {
		workers = len(reads)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Trace hook: under a traced request the batch gets a core.map span
	// with one core.read child per read; untraced callers (CLIs,
	// benchmarks) pay one context lookup and per-read nil checks.
	_, cmSpan := obs.StartSpan(ctx, "core.map")
	defer cmSpan.End()
	cmSpan.SetAttr("reads", int64(len(reads)))
	cmSpan.SetAttr("workers", int64(workers))
	out := make([]MapResult, len(reads))
	prog := NewProgressSink(o.Progress, len(reads))
	if workers <= 1 || len(reads) <= 1 {
		gWorkers.Set(1)
		e := d
		for i, r := range reads {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			readSpan := cmSpan.StartChild("core.read")
			if readSpan != nil {
				readSpan.SetAttr("read", int64(i))
				e.engine.SetSpan(readSpan)
			}
			busy := time.Now()
			oc, abandoned := runRead(e, r, o.DeadlinePerRead)
			tWorkerBusy.Observe(time.Since(busy))
			if readSpan != nil {
				e.engine.SetSpan(nil)
				finishReadSpan(readSpan, busy, oc)
			}
			out[i] = MapResult{Index: i, Alignments: oc.alns, Stats: oc.st, Err: oc.err}
			if abandoned {
				ne, cerr := d.Clone()
				if cerr != nil {
					return nil, cerr
				}
				e = ne
			}
			prog.Step()
		}
		return out, nil
	}
	gWorkers.Set(int64(workers))
	engines := make([]*Darwin, workers)
	for w := range engines {
		e, err := d.Clone()
		if err != nil {
			return nil, err
		}
		engines[w] = e
	}
	workerErrs := make([]error, workers)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(e *Darwin, tid int) {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil || workerErrs[tid-1] != nil {
					continue // drain remaining indices without mapping
				}
				endSpan := obs.Trace.StartTID("core.map_read.worker", tid)
				readSpan := cmSpan.StartChild("core.read")
				if readSpan != nil {
					readSpan.SetAttr("read", int64(i))
					readSpan.SetAttr("worker", int64(tid))
					e.engine.SetSpan(readSpan)
				}
				busy := time.Now()
				oc, abandoned := runRead(e, reads[i], o.DeadlinePerRead)
				tWorkerBusy.Observe(time.Since(busy))
				if readSpan != nil {
					e.engine.SetSpan(nil)
					finishReadSpan(readSpan, busy, oc)
				}
				endSpan()
				out[i] = MapResult{Index: i, Alignments: oc.alns, Stats: oc.st, Err: oc.err}
				if abandoned {
					ne, cerr := d.Clone()
					if cerr != nil {
						workerErrs[tid-1] = cerr
						continue
					}
					e = ne
				}
				prog.Step()
			}
		}(engines[w], w+1)
	}
feed:
	for i := range reads {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MapAll maps every read using the given number of worker goroutines
// (1 runs inline; <= 0 defaults to runtime.NumCPU()). Results are
// returned in input order; workers use cloned engines so bin state
// never races.
//
// Deprecated: use Map with WithWorkers.
func (d *Darwin) MapAll(reads []dna.Seq, workers int) ([]MapResult, error) {
	return d.Map(context.Background(), reads, WithWorkers(workers))
}

// MapAllContext is MapAll with cancellation between reads.
//
// Deprecated: use Map with WithWorkers.
func (d *Darwin) MapAllContext(ctx context.Context, reads []dna.Seq, workers int) ([]MapResult, error) {
	return d.Map(ctx, reads, WithWorkers(workers))
}
