package core

import (
	"fmt"
	"sync"

	"darwin/internal/dna"
	"darwin/internal/dsoft"
)

// Clone returns an engine sharing this one's (immutable) seed table
// but with private D-SOFT bin state, safe to use from another
// goroutine. This mirrors the hardware, where the seed tables are
// replicated read-only across DRAM channels while each query stream
// owns its bin-count SRAM state.
func (d *Darwin) Clone() (*Darwin, error) {
	stride := d.cfg.SeedStride
	if stride < 1 {
		stride = 1
	}
	filter, err := dsoft.New(d.table, dsoft.Config{
		N:       d.cfg.SeedN,
		H:       d.cfg.Threshold,
		BinSize: d.cfg.BinSize,
		Stride:  stride,
	})
	if err != nil {
		return nil, fmt.Errorf("core: cloning filter: %w", err)
	}
	clone := *d
	clone.filter = filter
	return &clone, nil
}

// MapResult pairs one read's alignments with its index and statistics.
type MapResult struct {
	// Index is the read's position in the input slice.
	Index int
	// Alignments are sorted by descending score.
	Alignments []ReadAlignment
	// Stats instruments the read's mapping.
	Stats MapStats
}

// MapAll maps every read using the given number of worker goroutines
// (≤ 1 runs inline). Results are returned in input order; workers use
// cloned engines so bin state never races.
func (d *Darwin) MapAll(reads []dna.Seq, workers int) ([]MapResult, error) {
	out := make([]MapResult, len(reads))
	if workers <= 1 || len(reads) <= 1 {
		for i, r := range reads {
			alns, st := d.MapRead(r)
			out[i] = MapResult{Index: i, Alignments: alns, Stats: st}
		}
		return out, nil
	}
	if workers > len(reads) {
		workers = len(reads)
	}
	engines := make([]*Darwin, workers)
	for w := range engines {
		e, err := d.Clone()
		if err != nil {
			return nil, err
		}
		engines[w] = e
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(e *Darwin) {
			defer wg.Done()
			for i := range next {
				alns, st := e.MapRead(reads[i])
				out[i] = MapResult{Index: i, Alignments: alns, Stats: st}
			}
		}(engines[w])
	}
	for i := range reads {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, nil
}
