package core

import (
	"fmt"
	"sync"
	"time"

	"darwin/internal/dna"
	"darwin/internal/dsoft"
	"darwin/internal/obs"
)

// MapAll observability: the worker gauge plus a busy-time timer, so
// utilization = core/worker_busy seconds / (wall × core/workers) is
// derivable from any run report.
var (
	gWorkers    = obs.Default.Gauge("core/workers")
	tWorkerBusy = obs.Default.Timer("core/worker_busy")
)

// Clone returns an engine sharing this one's (immutable) seed table
// but with private D-SOFT bin state, safe to use from another
// goroutine. This mirrors the hardware, where the seed tables are
// replicated read-only across DRAM channels while each query stream
// owns its bin-count SRAM state.
func (d *Darwin) Clone() (*Darwin, error) {
	stride := d.cfg.SeedStride
	if stride < 1 {
		stride = 1
	}
	filter, err := dsoft.New(d.table, dsoft.Config{
		N:       d.cfg.SeedN,
		H:       d.cfg.Threshold,
		BinSize: d.cfg.BinSize,
		Stride:  stride,
	})
	if err != nil {
		return nil, fmt.Errorf("core: cloning filter: %w", err)
	}
	clone := *d
	clone.filter = filter
	return &clone, nil
}

// MapResult pairs one read's alignments with its index and statistics.
type MapResult struct {
	// Index is the read's position in the input slice.
	Index int
	// Alignments are sorted by descending score.
	Alignments []ReadAlignment
	// Stats instruments the read's mapping.
	Stats MapStats
}

// MapAll maps every read using the given number of worker goroutines
// (≤ 1 runs inline). Results are returned in input order; workers use
// cloned engines so bin state never races.
func (d *Darwin) MapAll(reads []dna.Seq, workers int) ([]MapResult, error) {
	out := make([]MapResult, len(reads))
	if workers <= 1 || len(reads) <= 1 {
		gWorkers.Set(1)
		for i, r := range reads {
			busy := time.Now()
			alns, st := d.MapRead(r)
			tWorkerBusy.Observe(time.Since(busy))
			out[i] = MapResult{Index: i, Alignments: alns, Stats: st}
		}
		return out, nil
	}
	if workers > len(reads) {
		workers = len(reads)
	}
	gWorkers.Set(int64(workers))
	engines := make([]*Darwin, workers)
	for w := range engines {
		e, err := d.Clone()
		if err != nil {
			return nil, err
		}
		engines[w] = e
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(e *Darwin, tid int) {
			defer wg.Done()
			for i := range next {
				endSpan := obs.Trace.StartTID("core.map_read.worker", tid)
				busy := time.Now()
				alns, st := e.MapRead(reads[i])
				tWorkerBusy.Observe(time.Since(busy))
				endSpan()
				out[i] = MapResult{Index: i, Alignments: alns, Stats: st}
			}
		}(engines[w], w+1)
	}
	for i := range reads {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, nil
}
