package core

import (
	"reflect"
	"testing"

	"darwin/internal/dna"
	"darwin/internal/readsim"
)

func TestMapAllMatchesSequential(t *testing.T) {
	ref := testGenome(t, 150000, 191)
	d, err := New(ref, DefaultConfig(11, 600, 20))
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(ref, 12, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: 192})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	seq, err := d.MapAll(seqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := d.MapAll(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if par[i].Index != i {
			t.Fatalf("result %d out of order (index %d)", i, par[i].Index)
		}
		a, b := Best(seq[i].Alignments), Best(par[i].Alignments)
		switch {
		case a == nil && b == nil:
		case a == nil || b == nil:
			t.Fatalf("read %d: mapped-ness differs between sequential and parallel", i)
		case a.Result.Score != b.Result.Score || a.Result.RefStart != b.Result.RefStart:
			t.Fatalf("read %d: results differ: %+v vs %+v", i, a.Result, b.Result)
		}
		if seq[i].Stats.DSOFT.Hits != par[i].Stats.DSOFT.Hits {
			t.Fatalf("read %d: stats differ", i)
		}
	}
}

// TestMapAllDeterministicOrdering is the tie-breaking regression test:
// a read matching two identical reference copies produces equal-score
// alignments, whose order must be bit-stable across worker counts
// (SortAlignments breaks score ties on reference span, query span,
// then strand — a plain score sort left them in scheduling order).
func TestMapAllDeterministicOrdering(t *testing.T) {
	ref := testGenome(t, 60000, 195)
	// Plant an exact duplicate so equal-score ties actually occur.
	copy(ref[40000:43000], ref[10000:13000])
	d, err := New(ref, DefaultConfig(11, 600, 20))
	if err != nil {
		t.Fatal(err)
	}
	reads := []dna.Seq{
		ref[10200:12800].Clone(),
		dna.RevComp(ref[10200:12800]),
		ref[40500:42500].Clone(),
		ref[5000:7000].Clone(),
	}
	var baseline []MapResult
	sawTie := false
	for _, workers := range []int{1, 2, 4} {
		res, err := d.MapAll(reads, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			alns := res[i].Alignments
			for j := 1; j < len(alns); j++ {
				prev, cur := &alns[j-1], &alns[j]
				if prev.Result.Score < cur.Result.Score {
					t.Fatalf("workers=%d read %d: scores out of order at %d", workers, i, j)
				}
				if prev.Result.Score == cur.Result.Score {
					sawTie = true
					if prev.Result.RefStart > cur.Result.RefStart {
						t.Fatalf("workers=%d read %d: equal-score tie not broken by RefStart", workers, i)
					}
				}
			}
		}
		if baseline == nil {
			baseline = res
			continue
		}
		for i := range res {
			// Alignments must be bit-identical; stats are compared on
			// their deterministic work counts (stage times vary by run).
			if !reflect.DeepEqual(res[i].Alignments, baseline[i].Alignments) {
				t.Fatalf("workers=%d read %d: alignments differ from single-worker baseline", workers, i)
			}
			if res[i].Stats.Candidates != baseline[i].Stats.Candidates ||
				res[i].Stats.Tiles != baseline[i].Stats.Tiles {
				t.Fatalf("workers=%d read %d: work stats differ from single-worker baseline", workers, i)
			}
		}
	}
	if !sawTie {
		t.Fatal("duplicate region produced no equal-score alignments; test is vacuous")
	}
}

func TestCloneIndependentState(t *testing.T) {
	ref := testGenome(t, 50000, 193)
	d, err := New(ref, DefaultConfig(11, 400, 18))
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c.Table() != d.Table() {
		t.Error("clone should share the seed table")
	}
	// Interleaved queries on both engines must match fresh queries.
	q1 := ref[1000:3000].Clone()
	q2 := ref[20000:22000].Clone()
	a1, _ := d.MapRead(q1)
	b1, _ := c.MapRead(q2)
	a2, _ := d.MapRead(q1)
	b2, _ := c.MapRead(q2)
	if Best(a1).Result.Score != Best(a2).Result.Score {
		t.Error("original engine state leaked across queries")
	}
	if Best(b1).Result.Score != Best(b2).Result.Score {
		t.Error("cloned engine state leaked across queries")
	}
}
