package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"darwin/internal/faults"
)

// zeroStatTimes clears the wall-clock stat fields so result sets from
// different runs can be compared with DeepEqual: FiltrationTime and
// AlignmentTime vary run to run even when the work is bit-identical.
func zeroStatTimes(results []MapResult) {
	for i := range results {
		results[i].Stats.FiltrationTime = 0
		results[i].Stats.AlignmentTime = 0
	}
}

// TestMapWrappersBitIdentical is the deprecation contract: MapAll and
// MapAllContext must be pure wrappers over Map — bit-identical
// alignments, stats (modulo wall-clock fields), indices, and errors —
// across worker counts, so migrating a caller can never change output.
func TestMapWrappersBitIdentical(t *testing.T) {
	ref := testGenome(t, 120000, 401)
	d, err := New(ref, DefaultConfig(11, 500, 19))
	if err != nil {
		t.Fatal(err)
	}
	seqs := simReads(t, ref, 10, 402)
	for _, workers := range []int{1, 3} {
		want, err := d.Map(context.Background(), seqs, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		viaMapAll, err := d.MapAll(seqs, workers)
		if err != nil {
			t.Fatal(err)
		}
		viaCtx, err := d.MapAllContext(context.Background(), seqs, workers)
		if err != nil {
			t.Fatal(err)
		}
		zeroStatTimes(want)
		zeroStatTimes(viaMapAll)
		zeroStatTimes(viaCtx)
		if !reflect.DeepEqual(viaMapAll, want) {
			t.Errorf("workers=%d: MapAll diverges from Map", workers)
		}
		if !reflect.DeepEqual(viaCtx, want) {
			t.Errorf("workers=%d: MapAllContext diverges from Map", workers)
		}
	}
}

// TestMapPanicIsolation: an injected panic while mapping one read must
// surface as that read's MapResult.Err — the batch completes and every
// other read maps normally.
func TestMapPanicIsolation(t *testing.T) {
	defer faults.Default.Reset()
	ref := testGenome(t, 80000, 403)
	d, err := New(ref, DefaultConfig(11, 400, 18))
	if err != nil {
		t.Fatal(err)
	}
	seqs := simReads(t, ref, 6, 404)
	clean, err := d.Map(context.Background(), seqs, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Default.Enable("core/map_read=every=3,panic=poisoned read"); err != nil {
		t.Fatal(err)
	}
	got, err := d.Map(context.Background(), seqs, WithWorkers(1))
	faults.Default.Reset()
	if err != nil {
		t.Fatalf("Map must not fail the batch on a per-read panic: %v", err)
	}
	for i := range got {
		if (i+1)%3 == 0 { // every=3 fires on calls 3, 6, ...
			if got[i].Err == nil || !strings.Contains(got[i].Err.Error(), "panicked") {
				t.Errorf("read %d: Err = %v, want contained panic", i, got[i].Err)
			}
			if got[i].Alignments != nil {
				t.Errorf("read %d: panicked read still has alignments", i)
			}
			continue
		}
		if got[i].Err != nil {
			t.Errorf("read %d: unexpected Err %v (blast radius exceeded one read)", i, got[i].Err)
		}
		if len(got[i].Alignments) != len(clean[i].Alignments) {
			t.Errorf("read %d: %d alignments with a neighbor panicking, want %d",
				i, len(got[i].Alignments), len(clean[i].Alignments))
		}
	}
}

// TestMapPerReadDeadline: a read held past WithDeadlinePerRead (via an
// injected delay) fails individually with context.DeadlineExceeded;
// the rest of the batch is unaffected.
func TestMapPerReadDeadline(t *testing.T) {
	defer faults.Default.Reset()
	ref := testGenome(t, 80000, 405)
	d, err := New(ref, DefaultConfig(11, 400, 18))
	if err != nil {
		t.Fatal(err)
	}
	seqs := simReads(t, ref, 5, 406)
	// Delay only the third read's map call well past the budget. The
	// margins are deliberately wide (a normal read maps in well under
	// 1s even with the race detector's overhead, and 4s is well past
	// the budget) so the test is timing-robust.
	if err := faults.Default.Enable("core/map_read=after=2,times=1,delay=4s"); err != nil {
		t.Fatal(err)
	}
	got, err := d.Map(context.Background(), seqs, WithWorkers(1), WithDeadlinePerRead(time.Second))
	faults.Default.Reset()
	if err != nil {
		t.Fatalf("Map must not fail the batch on a per-read deadline: %v", err)
	}
	for i := range got {
		if i == 2 {
			if !errors.Is(got[i].Err, context.DeadlineExceeded) {
				t.Errorf("read 2: Err = %v, want DeadlineExceeded", got[i].Err)
			}
			continue
		}
		if got[i].Err != nil {
			t.Errorf("read %d: unexpected Err %v", i, got[i].Err)
		}
	}
}

// TestMapProgress: the WithProgress callback fires once per read, is
// monotonic, and ends at (total, total) regardless of worker count.
func TestMapProgress(t *testing.T) {
	ref := testGenome(t, 80000, 407)
	d, err := New(ref, DefaultConfig(11, 400, 18))
	if err != nil {
		t.Fatal(err)
	}
	seqs := simReads(t, ref, 7, 408)
	for _, workers := range []int{1, 3} {
		var calls []int
		_, err := d.Map(context.Background(), seqs, WithWorkers(workers),
			WithProgress(func(done, total int) {
				if total != len(seqs) {
					t.Errorf("workers=%d: total = %d, want %d", workers, total, len(seqs))
				}
				calls = append(calls, done)
			}))
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != len(seqs) {
			t.Fatalf("workers=%d: %d progress calls for %d reads", workers, len(calls), len(seqs))
		}
		for i, done := range calls {
			if done != i+1 {
				t.Fatalf("workers=%d: progress not monotonic: %v", workers, calls)
			}
		}
	}
}

// TestMapInjectedFaultError: an error-action fault at core/map_read is
// confined to the read it fired on and is recognizable via IsInjected.
func TestMapInjectedFaultError(t *testing.T) {
	defer faults.Default.Reset()
	ref := testGenome(t, 80000, 409)
	d, err := New(ref, DefaultConfig(11, 400, 18))
	if err != nil {
		t.Fatal(err)
	}
	seqs := simReads(t, ref, 4, 410)
	if err := faults.Default.Enable("core/map_read=after=1,times=1,error=bad read"); err != nil {
		t.Fatal(err)
	}
	got, err := d.Map(context.Background(), seqs, WithWorkers(1))
	faults.Default.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if !faults.IsInjected(got[1].Err) {
		t.Errorf("read 1: Err = %v, want injected fault", got[1].Err)
	}
	for _, i := range []int{0, 2, 3} {
		if got[i].Err != nil {
			t.Errorf("read %d: unexpected Err %v", i, got[i].Err)
		}
	}
}
