package baseline

import (
	"sort"
	"time"

	"darwin/internal/dna"
)

// DalignerLike finds pairwise overlaps among long reads in the
// DALIGNER mold: it enumerates (seed, read, position) tuples for a
// block of reads, sorts them so hits of the same seed are adjacent,
// expands them into per-read-pair diagonal tuples, sorts again, and
// merge-counts the unique query bases covered per diagonal band —
// DALIGNER's base-counting criterion (the one that inspired D-SOFT,
// Section 10), realized with the sort-and-merge memory behaviour the
// paper contrasts with Darwin's table-lookup approach.
type DalignerLike struct {
	cfg DalignerConfig
}

// DalignerConfig parameterizes the overlap finder.
type DalignerConfig struct {
	// K is the seed size.
	K int
	// BinSize is the diagonal band width.
	BinSize int
	// MinBases is the unique covered-base threshold (like D-SOFT's h).
	MinBases int
	// MaxSeedOcc masks seeds occurring more often than this across the
	// block (repeat guard, like DALIGNER's -t).
	MaxSeedOcc int
	// MinOverlap discards candidate overlaps shorter than this many
	// bases after verification.
	MinOverlap int
}

// DefaultDalignerConfig returns a PacBio-overlap-oriented config.
func DefaultDalignerConfig() DalignerConfig {
	return DalignerConfig{K: 14, BinSize: 256, MinBases: 28, MaxSeedOcc: 64, MinOverlap: 500}
}

// NewDalignerLike returns the overlap finder.
func NewDalignerLike(cfg DalignerConfig) *DalignerLike { return &DalignerLike{cfg: cfg} }

// Name identifies the tool in reports.
func (d *DalignerLike) Name() string { return "daligner-like" }

// Overlap is a detected pairwise overlap between reads A and B.
type Overlap struct {
	// A and B are read indices, A < B.
	A, B int
	// BRev is true if B overlaps A in reverse-complement orientation.
	BRev bool
	// AStart, AEnd delimit the overlap on read A.
	AStart, AEnd int
	// Score ranks the overlap (−edit distance of the verification).
	Score int
}

// FindOverlaps returns overlaps among the block of reads, plus stage
// timings (sort-merge filtration vs verification alignment).
func (d *DalignerLike) FindOverlaps(reads []dna.Seq) ([]Overlap, StageTimes) {
	var times StageTimes
	start := time.Now()

	// Orientation handling: sequence s with id 2r is read r forward,
	// 2r+1 is its reverse complement. Pairs are counted between a
	// forward "A-side" and either orientation of a later read.
	seqs := make([]dna.Seq, 2*len(reads))
	for r, rd := range reads {
		seqs[2*r] = rd
		seqs[2*r+1] = dna.RevComp(rd)
	}

	// Pass 1: (seed, seq, pos) tuples, sorted by seed.
	type tuple struct {
		seed uint32
		seq  int32
		pos  int32
	}
	var tuples []tuple
	for id, s := range seqs {
		for p := 0; p+d.cfg.K <= len(s); p++ {
			code, ok := dna.PackSeed(s, p, d.cfg.K)
			if !ok {
				continue
			}
			tuples = append(tuples, tuple{code, int32(id), int32(p)})
		}
	}
	sort.Slice(tuples, func(a, b int) bool {
		if tuples[a].seed != tuples[b].seed {
			return tuples[a].seed < tuples[b].seed
		}
		if tuples[a].seq != tuples[b].seq {
			return tuples[a].seq < tuples[b].seq
		}
		return tuples[a].pos < tuples[b].pos
	})

	// Pass 2: expand seed groups into per-pair diagonal tuples.
	// pairKey packs (A-side seq, B-side seq); diag = posA − posB.
	type hit struct {
		pair int64
		diag int32
		posB int32
	}
	var hits []hit
	for lo := 0; lo < len(tuples); {
		hi := lo
		for hi < len(tuples) && tuples[hi].seed == tuples[lo].seed {
			hi++
		}
		if hi-lo <= d.cfg.MaxSeedOcc {
			for x := lo; x < hi; x++ {
				for y := lo; y < hi; y++ {
					a, b := tuples[x], tuples[y]
					// A-side must be forward and a strictly earlier read.
					if a.seq%2 != 0 || int(a.seq)/2 >= int(b.seq)/2 {
						continue
					}
					hits = append(hits, hit{
						pair: int64(a.seq)<<32 | int64(b.seq),
						diag: a.pos - b.pos,
						posB: b.pos,
					})
				}
			}
		}
		lo = hi
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].pair != hits[b].pair {
			return hits[a].pair < hits[b].pair
		}
		da := int32(hits[a].diag) / int32(d.cfg.BinSize)
		db := int32(hits[b].diag) / int32(d.cfg.BinSize)
		if da != db {
			return da < db
		}
		return hits[a].posB < hits[b].posB
	})

	// Pass 3: merge-count unique B bases per (pair, band).
	type cand struct {
		pair int64
		diag int32
	}
	var cands []cand
	for lo := 0; lo < len(hits); {
		hi := lo
		band := hits[lo].diag / int32(d.cfg.BinSize)
		for hi < len(hits) && hits[hi].pair == hits[lo].pair && hits[hi].diag/int32(d.cfg.BinSize) == band {
			hi++
		}
		covered, lastEnd := 0, int32(-1)
		for x := lo; x < hi; x++ {
			s := hits[x].posB
			e := s + int32(d.cfg.K)
			if s > lastEnd {
				covered += int(e - s)
			} else if e > lastEnd {
				covered += int(e - lastEnd)
			}
			if e > lastEnd {
				lastEnd = e
			}
		}
		if covered >= d.cfg.MinBases {
			cands = append(cands, cand{pair: hits[lo].pair, diag: hits[lo].diag})
		}
		lo = hi
	}
	// Deduplicate pairs (multiple bands may fire for one pair).
	seen := map[int64]bool{}
	times.Filtration = time.Since(start)

	// Verification: align the predicted overlapping segment of B
	// (dovetail geometry from the candidate diagonal) against A, and
	// keep sufficiently long overlaps.
	start = time.Now()
	var out []Overlap
	for _, c := range cands {
		if seen[c.pair] {
			continue
		}
		seen[c.pair] = true
		aID := int(c.pair >> 32)
		bID := int(c.pair & 0xffffffff)
		aSeq, bSeq := seqs[aID], seqs[bID]
		diag := int(c.diag)
		// B position b maps to A position ≈ b + diag; clip to both reads
		// with slack for indel drift.
		slack := d.cfg.BinSize * 2
		bLo := max(0, -diag-slack)
		bHi := min(len(bSeq), len(aSeq)-diag+slack)
		if bHi-bLo < d.cfg.MinOverlap/2 {
			continue
		}
		m, ok := verifyWindow(aSeq, bSeq[bLo:bHi], diag+bLo, slack)
		if !ok || m.RefEnd-m.RefStart < d.cfg.MinOverlap {
			continue
		}
		out = append(out, Overlap{
			A:      aID / 2,
			B:      bID / 2,
			BRev:   bID%2 == 1,
			AStart: m.RefStart,
			AEnd:   m.RefEnd,
			Score:  m.Score,
		})
	}
	times.Alignment = time.Since(start)
	return out, times
}
