package baseline

import (
	"sort"
	"time"

	"darwin/internal/dna"
	"darwin/internal/fmindex"
)

// BWAMemLike is a reference-guided mapper in the BWA-MEM mold: it
// seeds with variable-length maximal exact matches found by FM-index
// backward search (approximating super-maximal exact matches), chains
// seeds that fall on compatible diagonals, and verifies the best
// chains with banded alignment. It is the paper's PacBio
// reference-guided comparison class (run there as `bwa mem -x pacbio`).
type BWAMemLike struct {
	index *fmindex.Index
	ref   dna.Seq
	cfg   BWAMemConfig
}

// BWAMemConfig parameterizes the BWA-MEM-class mapper.
type BWAMemConfig struct {
	// MinSeedLen is the minimum exact-match length used as a seed
	// (BWA-MEM's -k, default 19).
	MinSeedLen int
	// SampleStride spaces the query end-positions probed for maximal
	// suffix matches.
	SampleStride int
	// MaxHitsPerSeed bounds hits taken per seed (repeat guard).
	MaxHitsPerSeed int
	// ChainBand is the diagonal tolerance for chaining.
	ChainBand int
	// MaxChains bounds how many chains are verified.
	MaxChains int
	// Pad is the verification window padding.
	Pad int
}

// DefaultBWAMemConfig returns a PacBio-oriented configuration.
func DefaultBWAMemConfig() BWAMemConfig {
	return BWAMemConfig{
		MinSeedLen:     17,
		SampleStride:   16,
		MaxHitsPerSeed: 16,
		ChainBand:      512,
		MaxChains:      6,
		Pad:            512,
	}
}

// NewBWAMemLike builds the mapper (and its FM-index) over a reference.
func NewBWAMemLike(ref dna.Seq, cfg BWAMemConfig) (*BWAMemLike, error) {
	idx, err := fmindex.Build(ref)
	if err != nil {
		return nil, err
	}
	return &BWAMemLike{index: idx, ref: ref, cfg: cfg}, nil
}

// Name identifies the mapper in reports.
func (b *BWAMemLike) Name() string { return "bwamem-like" }

// MapRead maps one query (forward orientation).
func (b *BWAMemLike) MapRead(q dna.Seq) ([]Mapping, StageTimes) {
	var times StageTimes
	start := time.Now()

	// Seeding: maximal suffix matches at sampled end positions.
	type seed struct{ qEnd, refPos, length int }
	var seeds []seed
	for end := len(q); end >= b.cfg.MinSeedLen; end -= b.cfg.SampleStride {
		length, pos := b.index.LongestSuffixMatch(q, end, b.cfg.MaxHitsPerSeed)
		if length < b.cfg.MinSeedLen {
			continue
		}
		for _, p := range pos {
			seeds = append(seeds, seed{qEnd: end, refPos: p, length: length})
		}
	}

	// Chaining: group seeds by diagonal band, score by covered bases.
	chains := map[int]int{}
	for _, s := range seeds {
		diag := s.refPos - (s.qEnd - s.length)
		chains[diag/b.cfg.ChainBand] += s.length
	}
	type chain struct{ band, score int }
	var ranked []chain
	for band, score := range chains {
		ranked = append(ranked, chain{band, score})
	}
	sort.Slice(ranked, func(a, c int) bool { return ranked[a].score > ranked[c].score })
	if len(ranked) > b.cfg.MaxChains {
		ranked = ranked[:b.cfg.MaxChains]
	}
	times.Filtration = time.Since(start)

	// Extension/verification of the best chains.
	start = time.Now()
	var out []Mapping
	for _, c := range ranked {
		diag := c.band * b.cfg.ChainBand
		if m, ok := verifyWindow(b.ref, q, diag, b.cfg.Pad+b.cfg.ChainBand); ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, c int) bool { return out[a].Score > out[c].Score })
	times.Alignment = time.Since(start)
	return out, times
}
