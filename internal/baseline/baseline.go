// Package baseline reimplements the comparison software of the paper's
// evaluation (Section 8) from scratch, at algorithm-class fidelity:
//
//   - GraphMapLike: a hit-count diagonal-band filter with heavyweight
//     filtration (the GraphMap role: ONT reference-guided baseline);
//   - BWAMemLike: FM-index variable-length seeding with diagonal
//     chaining and banded extension (the BWA-MEM role: PacBio
//     reference-guided baseline);
//   - DalignerLike: a sort-merge unique-base overlap counter over read
//     blocks (the DALIGNER role: de novo overlap baseline).
//
// The Edlib role (Figure 10) is played by align.Myers. Each baseline
// reports stage timings so the Figure 13 waterfall can be reproduced.
package baseline

import (
	"time"

	"darwin/internal/align"
	"darwin/internal/dna"
)

// Mapping is one candidate placement of a query on the reference.
type Mapping struct {
	// RefStart, RefEnd delimit the mapped reference span.
	RefStart, RefEnd int
	// Reverse is true if the reverse-complemented query mapped.
	Reverse bool
	// Score ranks mappings (higher is better; for edit-distance
	// verifiers this is −distance).
	Score int
}

// StageTimes splits a mapper's runtime into the two stages of
// Figure 13.
type StageTimes struct {
	Filtration time.Duration
	Alignment  time.Duration
}

// Add accumulates another measurement.
func (s *StageTimes) Add(o StageTimes) {
	s.Filtration += o.Filtration
	s.Alignment += o.Alignment
}

// Total returns the summed stage time.
func (s StageTimes) Total() time.Duration { return s.Filtration + s.Alignment }

// verifyWindow aligns the full query against a reference window around
// the candidate diagonal with Myers' bit-vector algorithm in infix
// mode, returning the mapped span and a score of −distance. This is
// the "alignment/verification" stage shared by the software baselines.
func verifyWindow(ref, q dna.Seq, diag int, pad int) (Mapping, bool) {
	lo := diag - pad
	hi := diag + len(q) + pad
	if lo < 0 {
		lo = 0
	}
	if hi > len(ref) {
		hi = len(ref)
	}
	if hi-lo < len(q)/2 || hi <= lo {
		return Mapping{}, false
	}
	res, err := align.Myers(ref[lo:hi], q, align.EditInfix)
	if err != nil {
		return Mapping{}, false
	}
	return Mapping{
		RefStart: lo + res.RefStart,
		RefEnd:   lo + res.RefEnd,
		Score:    -res.Distance,
	}, true
}
