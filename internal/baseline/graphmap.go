package baseline

import (
	"sort"
	"time"

	"darwin/internal/dna"
	"darwin/internal/seedtable"
)

// GraphMapLike is a reference-guided mapper in the GraphMap mold: it
// spends most of its time in filtration — every query seed is looked
// up and *seed hits* (not covered bases) are counted per diagonal
// band — and verifies only the few best bands. This reproduces the
// runtime profile of Figure 13 line 1 (99% filtration) and the
// hit-count precision behaviour Figure 2 contrasts with D-SOFT.
type GraphMapLike struct {
	table *seedtable.Table
	ref   dna.Seq
	cfg   GraphMapConfig

	counts map[int]int // diagonal-band hit counts, reused per query
}

// GraphMapConfig parameterizes the GraphMap-class mapper.
type GraphMapConfig struct {
	// K is the seed size.
	K int
	// Stride is the query-seed stride (GraphMap uses dense seeding).
	Stride int
	// BinSize is the diagonal band width.
	BinSize int
	// MinHits is the per-band hit threshold for candidacy.
	MinHits int
	// MaxCandidates bounds how many bands are verified.
	MaxCandidates int
	// Pad is the verification window padding.
	Pad int
}

// DefaultGraphMapConfig returns a configuration tuned for noisy ONT
// reads on megabase-scale references.
func DefaultGraphMapConfig() GraphMapConfig {
	return GraphMapConfig{K: 11, Stride: 1, BinSize: 256, MinHits: 2, MaxCandidates: 8, Pad: 256}
}

// NewGraphMapLike builds the mapper over a reference.
func NewGraphMapLike(ref dna.Seq, cfg GraphMapConfig) (*GraphMapLike, error) {
	tab, err := seedtable.Build(ref, cfg.K, seedtable.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &GraphMapLike{table: tab, ref: ref, cfg: cfg, counts: make(map[int]int)}, nil
}

// Name identifies the mapper in reports.
func (g *GraphMapLike) Name() string { return "graphmap-like" }

// MapRead maps one query (forward orientation) and reports the ranked
// mappings plus stage timings.
func (g *GraphMapLike) MapRead(q dna.Seq) ([]Mapping, StageTimes) {
	var times StageTimes
	start := time.Now()

	// Filtration: dense seeding, hit counting per diagonal band.
	clear(g.counts)
	B := g.cfg.BinSize
	for j := 0; j+g.cfg.K <= len(q); j += g.cfg.Stride {
		hits := g.table.LookupSeq(q, j)
		for _, hit := range hits {
			g.counts[(int(hit)-j+len(q)*2)/B]++
		}
	}
	type band struct{ bin, count int }
	var bands []band
	for bin, c := range g.counts {
		if c >= g.cfg.MinHits {
			bands = append(bands, band{bin, c})
		}
	}
	sort.Slice(bands, func(a, b int) bool { return bands[a].count > bands[b].count })
	if len(bands) > g.cfg.MaxCandidates {
		bands = bands[:g.cfg.MaxCandidates]
	}
	times.Filtration = time.Since(start)

	// Alignment/verification of the surviving bands.
	start = time.Now()
	var out []Mapping
	for _, b := range bands {
		diag := b.bin*B - len(q)*2
		if m, ok := verifyWindow(g.ref, q, diag, g.cfg.Pad+B); ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	times.Alignment = time.Since(start)
	return out, times
}
