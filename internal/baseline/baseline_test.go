package baseline

import (
	"testing"

	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

func testGenome(t *testing.T, n int, seed int64) dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Config{
		Length: n, GC: 0.45, RepeatFraction: 0.15, RepeatFamilies: 4,
		RepeatUnitLen: 200, RepeatDivergence: 0.1, TandemFraction: 0.1, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Seq
}

// mapBothStrands maps a read in both orientations and returns the best
// mapping, as the evaluation pipelines do.
func mapBothStrands(mapRead func(dna.Seq) ([]Mapping, StageTimes), q dna.Seq) (Mapping, bool) {
	best := Mapping{Score: -1 << 60}
	found := false
	fwd, _ := mapRead(q)
	for _, m := range fwd {
		if m.Score > best.Score {
			best = m
			found = true
		}
	}
	rev, _ := mapRead(dna.RevComp(q))
	for _, m := range rev {
		if m.Score > best.Score {
			best = m
			best.Reverse = true
			found = true
		}
	}
	return best, found
}

func checkMapper(t *testing.T, name string, mapRead func(dna.Seq) ([]Mapping, StageTimes), ref dna.Seq, profile readsim.Profile, minSens float64) {
	t.Helper()
	reads, err := readsim.SimulateN(ref, 25, readsim.Config{Profile: profile, MeanLen: 2000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range reads {
		r := &reads[i]
		m, ok := mapBothStrands(mapRead, r.Seq)
		if !ok {
			continue
		}
		// Paper criterion: within 50 bp of the ground-truth region.
		if m.RefStart >= r.RefStart-50 && m.RefStart <= r.RefStart+50 {
			correct++
		}
	}
	sens := float64(correct) / float64(len(reads))
	if sens < minSens {
		t.Errorf("%s %s: sensitivity %.2f, want ≥ %.2f", name, profile.Name, sens, minSens)
	}
}

func TestGraphMapLikeMapsONTReads(t *testing.T) {
	ref := testGenome(t, 300000, 81)
	g, err := NewGraphMapLike(ref, DefaultGraphMapConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkMapper(t, g.Name(), g.MapRead, ref, readsim.ONT2D, 0.85)
}

func TestGraphMapLikeTimings(t *testing.T) {
	ref := testGenome(t, 100000, 82)
	g, err := NewGraphMapLike(ref, DefaultGraphMapConfig())
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.SimulateN(ref, 3, readsim.Config{Profile: readsim.ONT2D, MeanLen: 2000, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	var total StageTimes
	for i := range reads {
		_, st := g.MapRead(reads[i].Seq)
		total.Add(st)
	}
	if total.Filtration <= 0 || total.Alignment <= 0 {
		t.Errorf("stage times not recorded: %+v", total)
	}
	if total.Total() != total.Filtration+total.Alignment {
		t.Error("Total() inconsistent")
	}
}

func TestBWAMemLikeMapsPacBioReads(t *testing.T) {
	ref := testGenome(t, 200000, 84)
	b, err := NewBWAMemLike(ref, DefaultBWAMemConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkMapper(t, b.Name(), b.MapRead, ref, readsim.PacBio, 0.85)
}

func TestBWAMemLikeNoSpuriousOnRandomQuery(t *testing.T) {
	ref := testGenome(t, 100000, 85)
	b, err := NewBWAMemLike(ref, DefaultBWAMemConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A query unrelated to the reference should produce no long exact
	// seeds and hence no (or only poor) mappings.
	other := testGenome(t, 2000, 86)
	maps, _ := b.MapRead(other)
	for _, m := range maps {
		// Edit distance near the read length means "no real mapping".
		if -m.Score < len(other)/3 {
			t.Errorf("unrelated query mapped with distance %d (< len/3)", -m.Score)
		}
	}
}

func TestDalignerLikeFindsOverlaps(t *testing.T) {
	ref := testGenome(t, 60000, 87)
	// 8× coverage of 2 kbp reads over a 60 kbp genome: adjacent reads
	// overlap heavily.
	reads, err := readsim.SimulateN(ref, 240, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: 88})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	d := NewDalignerLike(DefaultDalignerConfig())
	overlaps, times := d.FindOverlaps(seqs[:60])
	if len(overlaps) == 0 {
		t.Fatal("no overlaps found")
	}
	if times.Filtration <= 0 || times.Alignment <= 0 {
		t.Errorf("stage times not recorded: %+v", times)
	}
	// Verify a sample of reported overlaps against ground truth: the
	// template intervals of the two reads must intersect.
	badPairs := 0
	for _, ov := range overlaps {
		if ov.A >= ov.B {
			t.Fatalf("overlap pair not ordered: %+v", ov)
		}
		ra, rb := &reads[ov.A], &reads[ov.B]
		lo := max(ra.RefStart, rb.RefStart)
		hi := min(ra.RefEnd, rb.RefEnd)
		if hi-lo < 200 {
			badPairs++
		}
	}
	if frac := float64(badPairs) / float64(len(overlaps)); frac > 0.1 {
		t.Errorf("%.0f%% of reported overlaps have no ground-truth intersection", frac*100)
	}
}

func TestDalignerLikeSensitivity(t *testing.T) {
	ref := testGenome(t, 40000, 89)
	reads, err := readsim.SimulateN(ref, 80, readsim.Config{Profile: readsim.PacBio, MeanLen: 2000, Seed: 90})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	d := NewDalignerLike(DefaultDalignerConfig())
	overlaps, _ := d.FindOverlaps(seqs)
	found := map[[2]int]bool{}
	for _, ov := range overlaps {
		found[[2]int{ov.A, ov.B}] = true
	}
	// Ground-truth overlapping pairs (≥ 1 kbp, paper criterion).
	total, detected := 0, 0
	for a := 0; a < len(reads); a++ {
		for b := a + 1; b < len(reads); b++ {
			lo := max(reads[a].RefStart, reads[b].RefStart)
			hi := min(reads[a].RefEnd, reads[b].RefEnd)
			if hi-lo >= 1000 {
				total++
				if found[[2]int{a, b}] {
					detected++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("test setup produced no ground-truth overlaps")
	}
	sens := float64(detected) / float64(total)
	if sens < 0.80 {
		t.Errorf("overlap sensitivity %.2f (%d/%d), want ≥ 0.80", sens, detected, total)
	}
}

func TestVerifyWindowBounds(t *testing.T) {
	ref := testGenome(t, 5000, 91)
	q := ref[1000:1500].Clone()
	m, ok := verifyWindow(ref, q, 1000, 100)
	if !ok {
		t.Fatal("verifyWindow failed on exact substring")
	}
	if m.Score != 0 {
		t.Errorf("distance = %d, want 0", -m.Score)
	}
	if m.RefStart != 1000 || m.RefEnd != 1500 {
		t.Errorf("span = [%d,%d), want [1000,1500)", m.RefStart, m.RefEnd)
	}
	// Out-of-range diagonal: window collapses.
	if _, ok := verifyWindow(ref, q, 100000, 10); ok {
		t.Error("expected failure for out-of-range window")
	}
}
