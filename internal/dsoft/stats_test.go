package dsoft

import (
	"reflect"
	"testing"
)

// TestStatsAddAggregatesEveryField fills every Stats field with a
// distinct value via reflection and checks Add sums each one — so a
// newly added field that Add forgets fails this test instead of being
// silently dropped from roll-ups.
func TestStatsAddAggregatesEveryField(t *testing.T) {
	var a, b Stats
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	typ := av.Type()
	if typ.NumField() == 0 {
		t.Fatal("Stats has no fields")
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int32, reflect.Int64:
			av.Field(i).SetInt(int64(i + 1))
			bv.Field(i).SetInt(int64(100 * (i + 1)))
		default:
			t.Fatalf("Stats.%s has kind %s: extend this test and Stats.Add together", f.Name, f.Type.Kind())
		}
	}
	a.Add(b)
	for i := 0; i < typ.NumField(); i++ {
		want := int64(i+1) + int64(100*(i+1))
		if got := av.Field(i).Int(); got != want {
			t.Errorf("Stats.%s not aggregated by Add: got %d, want %d", typ.Field(i).Name, got, want)
		}
	}
}
