package dsoft

import (
	"math/rand"
	"testing"
	"testing/quick"

	"darwin/internal/dna"
	"darwin/internal/seedtable"
)

// Property: raising h never adds candidate bins (Fig. 11's monotone
// knob), for arbitrary references, queries, and parameters.
func TestQuickThresholdMonotoneBins(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := dna.Random(rng, 200+rng.Intn(800), 0.5)
		start := rng.Intn(len(ref) / 2)
		ln := 50 + rng.Intn(len(ref)/2-1)
		if start+ln > len(ref) {
			ln = len(ref) - start
		}
		q := append(ref[start:start+ln].Clone(), dna.Random(rng, 50, 0.5)...)
		k := 4 + rng.Intn(4)
		tab, err := seedtable.Build(ref, k, seedtable.Options{NoMask: true})
		if err != nil {
			return false
		}
		h1 := 2 + rng.Intn(20)
		h2 := h1 + 1 + rng.Intn(20)
		binSize := 1 << (3 + rng.Intn(4))
		f1, err := New(tab, Config{N: len(q), H: h1, BinSize: binSize})
		if err != nil {
			return false
		}
		f2, err := New(tab, Config{N: len(q), H: h2, BinSize: binSize})
		if err != nil {
			return false
		}
		c1, _ := f1.Query(q)
		c2, _ := f2.Query(q)
		bins1 := map[int]bool{}
		for _, c := range c1 {
			bins1[c.Bin] = true
		}
		for _, c := range c2 {
			if !bins1[c.Bin] {
				return false // a bin fired at high h but not at low h
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: every candidate's (RefPos, QueryPos) is a genuine seed
// match between reference and query, and its Bin is the hit's
// canonical diagonal band.
func TestQuickCandidatesAreRealHits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := dna.Random(rng, 300+rng.Intn(500), 0.5)
		q := append(ref[:100+rng.Intn(100)].Clone(), dna.Random(rng, 40, 0.5)...)
		const k = 6
		tab, err := seedtable.Build(ref, k, seedtable.Options{NoMask: true})
		if err != nil {
			return false
		}
		filter, err := New(tab, Config{N: len(q), H: 8, BinSize: 32})
		if err != nil {
			return false
		}
		cands, _ := filter.Query(q)
		for _, c := range cands {
			rc, ok1 := dna.PackSeed(ref, c.RefPos, k)
			qc, ok2 := dna.PackSeed(q, c.QueryPos, k)
			if !ok1 || !ok2 || rc != qc {
				return false
			}
			if c.Bin != filter.BinOf(c.RefPos, c.QueryPos) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: stats are internally consistent for arbitrary queries.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := dna.Random(rng, 400, 0.5)
		q := dna.Random(rng, 100+rng.Intn(200), 0.5)
		tab, err := seedtable.Build(ref, 5, seedtable.Options{NoMask: true})
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(300)
		filter, err := New(tab, Config{N: n, H: 6, BinSize: 64})
		if err != nil {
			return false
		}
		cands, st := filter.Query(q)
		return st.Candidates == len(cands) &&
			st.SeedsIssued+st.SeedsSkipped <= n &&
			st.BinsTouched <= st.Hits &&
			st.Candidates <= st.Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
