// Package dsoft implements D-SOFT (Section 3, Algorithm 1), Darwin's
// seed filtration algorithm: seeds drawn from the query are looked up
// in a seed position table, each hit is assigned to a diagonal band
// (bin) of width B, and the filter counts the number of *unique query
// bases* covered by seed hits in each band. Bands whose count crosses
// the threshold h become candidate alignment positions.
//
// Counting unique bases (rather than seed hits) is what makes D-SOFT
// more precise than hit-counting filters at the same sensitivity — the
// contrast Figure 2 illustrates and the HitCountMode option ablates.
//
// The implementation mirrors the hardware's structures: per-bin
// bp_count and last_hit_pos arrays (the bin-count SRAM), an NZ list so
// only touched bins are cleared between queries, and an optional
// 5-bit saturating bp_count for exact hardware fidelity.
package dsoft

import (
	"fmt"

	"darwin/internal/dna"
	"darwin/internal/obs"
	"darwin/internal/seedtable"
)

// Pipeline observability (package obs): filter work counters are
// aggregated once per Query from the returned Stats, and the whole
// query is timed under the disjoint stage/filter timer — the
// "filtration" half of the paper's Figure 13 runtime split.
var (
	cSeedsIssued  = obs.Default.Counter("dsoft/seeds_issued")
	cSeedsSkipped = obs.Default.Counter("dsoft/seeds_skipped")
	cHits         = obs.Default.Counter("dsoft/hits")
	cBinsTouched  = obs.Default.Counter("dsoft/bins_touched")
	cCandidates   = obs.Default.Counter("dsoft/candidates")
	cQueries      = obs.Default.Counter("dsoft/queries")
	tFilter       = obs.Default.Timer("stage/filter")
)

// Config holds D-SOFT parameters. The paper's defaults are B=128,
// stride=1; (k, N, h) are the tuning knobs of Figure 11 and Table 4.
type Config struct {
	// N is the number of seeds drawn from the query (from position
	// Start, advancing by Stride).
	N int
	// H is the threshold: bins whose unique-base count reaches H are
	// reported as candidates.
	H int
	// BinSize is the diagonal band width B (a power of two in
	// hardware; Darwin uses 128).
	BinSize int
	// Stride is the distance between consecutive seed start positions
	// (Darwin uses 1).
	Stride int
	// Start is the first seed offset in the query.
	Start int
	// SaturateCounts emulates the hardware's 5-bit saturating
	// bp_count counters (values cap at 31). Candidate sets are
	// identical to exact counting whenever H ≤ 31−k+1.
	SaturateCounts bool
	// HitCountMode counts seed hits instead of unique covered bases —
	// the strategy of BLAST-like/GraphMap-like filters, kept as an
	// ablation of D-SOFT's central idea.
	HitCountMode bool
	// ResetGap, when positive, clears a bin whose last hit is more
	// than ResetGap query bases behind the current seed, letting the
	// bin fire again. Read mapping never needs this (one alignment
	// per band per read), but whole-genome queries can host several
	// distinct collinear blocks on one diagonal band — e.g. segments
	// flanking an inversion (Section 11's whole-genome-alignment
	// extension).
	ResetGap int
}

// DefaultConfig returns the paper's fixed parameters with the given
// tuning knobs.
func DefaultConfig(n, h int) Config {
	return Config{N: n, H: h, BinSize: 128, Stride: 1}
}

// Candidate is one filtered alignment position: the last seed hit of a
// bin whose count crossed the threshold (<i, j> of Algorithm 1 line 13).
type Candidate struct {
	// Bin is the canonical diagonal band index ⌊(i−j)/B⌋; it may be
	// negative and is stable across queries of different lengths.
	Bin int
	// RefPos is the reference position i of the triggering hit.
	RefPos int
	// QueryPos is the query offset j of the triggering seed.
	QueryPos int
}

// Stats counts the work one query generated; the hardware model
// converts these into DRAM and SRAM cycles.
type Stats struct {
	// SeedsIssued is the number of seed lookups performed.
	SeedsIssued int
	// SeedsSkipped counts seeds skipped for containing N.
	SeedsSkipped int
	// Hits is the total number of position-table hits processed
	// (= bin-update operations).
	Hits int
	// BinsTouched is the number of distinct bins updated.
	BinsTouched int
	// Candidates is the number of candidate positions emitted.
	Candidates int
}

// Add accumulates another query's work counts. Aggregation lives here
// (not field-by-field at call sites) so a new Stats field can't be
// silently dropped from roll-ups; a reflection test enforces that
// every numeric field is summed.
func (s *Stats) Add(o Stats) {
	s.SeedsIssued += o.SeedsIssued
	s.SeedsSkipped += o.SeedsSkipped
	s.Hits += o.Hits
	s.BinsTouched += o.BinsTouched
	s.Candidates += o.Candidates
}

// publish folds the query's counts into the process-wide registry.
func (s *Stats) publish() {
	cQueries.Inc()
	cSeedsIssued.Add(int64(s.SeedsIssued))
	cSeedsSkipped.Add(int64(s.SeedsSkipped))
	cHits.Add(int64(s.Hits))
	cBinsTouched.Add(int64(s.BinsTouched))
	cCandidates.Add(int64(s.Candidates))
}

// Filter runs D-SOFT queries against one reference's seed table.
// It is not safe for concurrent use; create one per goroutine.
type Filter struct {
	table *seedtable.Table
	cfg   Config
	k     int // seed size, pinned at New so SetTable can't change it

	// Bin state, sized to cover every possible diagonal. Diagonal
	// d = i − j ranges over (−maxQ, refLen); bins are indexed by
	// (d + qPad) / B. The arrays are grown on demand and cleared via
	// the nz list, exactly like the hardware's NZ queue.
	bpCount []int32
	lastHit []int32
	nz      []int32
	qPad    int

	saturateMax int32
}

// New creates a filter over the given seed table.
func New(table *seedtable.Table, cfg Config) (*Filter, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dsoft: seed count N=%d must be positive", cfg.N)
	}
	if cfg.H <= 0 {
		return nil, fmt.Errorf("dsoft: threshold h=%d must be positive", cfg.H)
	}
	if cfg.BinSize <= 0 {
		return nil, fmt.Errorf("dsoft: bin size B=%d must be positive", cfg.BinSize)
	}
	if cfg.BinSize&(cfg.BinSize-1) != 0 {
		return nil, fmt.Errorf("dsoft: bin size B=%d must be a power of two (hardware constraint)", cfg.BinSize)
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	f := &Filter{table: table, cfg: cfg, k: table.K(), saturateMax: 1<<31 - 1}
	if cfg.SaturateCounts {
		f.saturateMax = 31 // 5-bit counter
	}
	return f, nil
}

// Config returns the filter's configuration.
func (f *Filter) Config() Config { return f.cfg }

// SetTable rebinds the filter to another seed table with the same seed
// size — the sharded mapper's hot path, where one filter's bin-count
// arrays are reused across every shard of a partitioned reference
// (bins are sized to the largest table seen and smaller tables use a
// prefix). Passing nil drops the table reference so an evictable
// shard table is not pinned between queries; the filter must be
// rebound before its next Query.
func (f *Filter) SetTable(t *seedtable.Table) error {
	if t != nil && t.K() != f.k {
		return fmt.Errorf("dsoft: cannot rebind filter from k=%d to k=%d", f.k, t.K())
	}
	f.table = t
	return nil
}

// ensureBins sizes the bin arrays for a query of length qLen.
func (f *Filter) ensureBins(qLen int) {
	B := f.cfg.BinSize
	qPad := (qLen/B + 2) * B
	nb := (f.table.RefLen()+qPad)/B + 2
	if qPad <= f.qPad && nb <= len(f.bpCount) {
		return
	}
	f.qPad = qPad
	f.bpCount = make([]int32, nb)
	f.lastHit = make([]int32, nb)
	for i := range f.lastHit {
		f.lastHit[i] = int32(-f.table.K())
	}
	f.nz = f.nz[:0]
}

// Query runs Algorithm 1 for one query sequence, returning candidate
// positions and work statistics. Bin state is cleared (via the NZ
// list) before returning, so calls are independent. Each call
// allocates a fresh candidate slice; hot loops that map many queries
// use QueryInto with a reused buffer instead.
func (f *Filter) Query(q dna.Seq) ([]Candidate, Stats) {
	return f.QueryInto(q, nil)
}

// QueryInto is Query appending candidates to out (typically a reused
// buffer truncated with out[:0]) and returning the extended slice, so
// steady-state mapping pays no per-query candidate allocation once the
// buffer has grown to the working-set size.
func (f *Filter) QueryInto(q dna.Seq, out []Candidate) ([]Candidate, Stats) {
	defer tFilter.Time()()
	defer obs.Trace.Start("dsoft.query")()
	k := f.table.K()
	B := f.cfg.BinSize
	f.ensureBins(len(q))
	defer f.clear()

	var st Stats

	end := f.cfg.Start + f.cfg.N*f.cfg.Stride
	for j := f.cfg.Start; j < end && j+k <= len(q); j += f.cfg.Stride {
		code, ok := f.table.PackQuery(q, j)
		if !ok {
			st.SeedsSkipped++
			continue
		}
		st.SeedsIssued++
		hits := f.table.Lookup(code)
		st.Hits += len(hits)
		for _, hit := range hits {
			i := int(hit)
			bin := (i - j + f.qPad) / B
			last := f.lastHit[bin]
			count := f.bpCount[bin]
			if count == 0 && last == int32(-k) {
				f.nz = append(f.nz, int32(bin))
				st.BinsTouched++
			}
			if f.cfg.ResetGap > 0 && last != int32(-k) && int32(j)-last > int32(f.cfg.ResetGap) {
				count = 0 // stale bin: allow a fresh crossing
			}
			var add int32
			if f.cfg.HitCountMode {
				add = 1
			} else {
				overlap := int32(0)
				if o := last + int32(k) - int32(j); o > 0 {
					overlap = o
				}
				add = int32(k) - overlap
			}
			f.lastHit[bin] = int32(j)
			newCount := count + add
			if newCount > f.saturateMax {
				newCount = f.saturateMax
			}
			f.bpCount[bin] = newCount
			// Emit on first crossing of h (Algorithm 1 line 12). The
			// reported bin is canonical (⌊(i−j)/B⌋): qPad is a multiple
			// of B, so subtracting qPad/B removes the padding offset.
			if count < int32(f.cfg.H) && newCount >= int32(f.cfg.H) {
				out = append(out, Candidate{Bin: bin - f.qPad/B, RefPos: i, QueryPos: j})
				st.Candidates++
			}
		}
	}
	st.publish()
	return out, st
}

// Trace runs the seed-lookup front half of Algorithm 1 and returns,
// for each issued seed, the list of bin indices its hits update — the
// (bin, j) stream the D-SOFT accelerator's NoC routes to the
// bin-count SRAM banks (Section 6). Used by the accelerator simulator
// (package dsoftsim); bin state is not modified.
func (f *Filter) Trace(q dna.Seq) [][]int {
	k := f.table.K()
	B := f.cfg.BinSize
	f.ensureBins(len(q))
	var out [][]int
	end := f.cfg.Start + f.cfg.N*f.cfg.Stride
	for j := f.cfg.Start; j < end && j+k <= len(q); j += f.cfg.Stride {
		code, ok := f.table.PackQuery(q, j)
		if !ok {
			continue
		}
		hits := f.table.Lookup(code)
		bins := make([]int, len(hits))
		for x, hit := range hits {
			bins[x] = (int(hit) - j + f.qPad) / B
		}
		out = append(out, bins)
	}
	return out
}

// clear resets only the touched bins, as the hardware's NZ queue does
// between queries.
func (f *Filter) clear() {
	k := int32(f.table.K())
	for _, bin := range f.nz {
		f.bpCount[bin] = 0
		f.lastHit[bin] = -k
	}
	f.nz = f.nz[:0]
}

// BinOf returns the canonical bin index ⌊(refPos−queryPos)/B⌋ a hit
// falls into, for ground-truth evaluation of candidates.
func (f *Filter) BinOf(refPos, queryPos int) int {
	d := refPos - queryPos
	b := f.cfg.BinSize
	if d < 0 {
		return -((-d + b - 1) / b)
	}
	return d / b
}

// NumBins returns the current number of allocated bins (NB).
func (f *Filter) NumBins() int { return len(f.bpCount) }
