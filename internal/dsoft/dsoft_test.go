package dsoft

import (
	"math/rand"
	"reflect"
	"testing"

	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
	"darwin/internal/seedtable"
)

// naiveDSOFT is a direct transliteration of Algorithm 1 using
// brute-force seed lookup, used as an oracle.
func naiveDSOFT(ref, q dna.Seq, k int, cfg Config, qPad int) []Candidate {
	B := cfg.BinSize
	nb := (len(ref)+qPad)/B + 2
	lastHit := make([]int, nb)
	bpCount := make([]int, nb)
	for i := range lastHit {
		lastHit[i] = -k
	}
	var out []Candidate
	end := cfg.Start + cfg.N*cfg.Stride
	for j := cfg.Start; j < end && j+k <= len(q); j += cfg.Stride {
		seed, ok := dna.PackSeed(q, j, k)
		if !ok {
			continue
		}
		for i := 0; i+k <= len(ref); i++ {
			code, ok := dna.PackSeed(ref, i, k)
			if !ok || code != seed {
				continue
			}
			bin := (i - j + qPad) / B
			if cfg.ResetGap > 0 && lastHit[bin] != -k && j-lastHit[bin] > cfg.ResetGap {
				bpCount[bin] = 0
			}
			overlap := 0
			if o := lastHit[bin] + k - j; o > 0 {
				overlap = o
			}
			lastHit[bin] = j
			add := k - overlap
			if cfg.HitCountMode {
				add = 1
			}
			old := bpCount[bin]
			bpCount[bin] += add
			if old < cfg.H && bpCount[bin] >= cfg.H {
				out = append(out, Candidate{Bin: bin - qPad/B, RefPos: i, QueryPos: j})
			}
		}
	}
	return out
}

func buildTable(t *testing.T, ref dna.Seq, k int) *seedtable.Table {
	t.Helper()
	tab, err := seedtable.Build(ref, k, seedtable.Options{NoMask: true})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestMatchesNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		ref := dna.Random(rng, 400, 0.5)
		// Query embeds a chunk of the reference so real candidates exist.
		start := rng.Intn(300)
		q := append(dna.Random(rng, 20, 0.5), ref[start:start+60]...)
		q = append(q, dna.Random(rng, 20, 0.5)...)

		k := 4 + trial%3
		cfg := Config{N: 60, H: 5 + trial%8, BinSize: 16, Stride: 1}
		if trial%4 == 0 {
			cfg.HitCountMode = true
			cfg.H = 2 + trial%3
		}
		f, err := New(buildTable(t, ref, k), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := f.Query(q)
		want := naiveDSOFT(ref, q, k, cfg, f.qPad)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (k=%d cfg=%+v):\ngot  %v\nwant %v", trial, k, cfg, got, want)
		}
	}
}

// TestUniqueBaseVsHitCount reproduces the Figure 2 contrast: a band
// with heavily overlapping seed hits (few unique bases) must be
// rejected by base counting yet accepted by hit counting.
func TestUniqueBaseVsHitCount(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	// Region A: an 11bp shared word ⇒ 4 seed positions (k=8) covering
	// only 11 unique bases. Region B: a 20bp exact copy ⇒ 13 seed
	// positions covering 20 unique bases. With k=8 spurious random
	// hits are vanishingly rare.
	word := dna.NewSeq("ACGTGCATTCA")           // 11bp
	block := dna.NewSeq("GGATCCGGTTAACCGGATAC") // 20bp
	ref := dna.Random(rng, 400, 0.5)
	copy(ref[40:], word)
	copy(ref[200:], block)
	q := dna.Random(rng, 150, 0.5)
	copy(q[10:], word)
	copy(q[80:], block)

	const k = 8
	tab := buildTable(t, ref, k)
	binA := (40 - 10) / 32
	binB := (200 - 80) / 32

	// Base counting with h=16: only the 20-base region qualifies
	// (the word region has just 11 unique bases).
	f, err := New(tab, Config{N: 143, H: 16, BinSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	cands, _ := f.Query(q)
	seen := map[int]bool{}
	for _, c := range cands {
		seen[c.Bin] = true
	}
	if !seen[binB] {
		t.Errorf("base counting missed the 20bp region (bin %d); candidates: %v", binB, cands)
	}
	if seen[binA] {
		t.Errorf("base counting accepted the 11-unique-base region (bin %d) at h=16", binA)
	}

	// Hit counting with h=4 hits: both regions have ≥4 seed hits, so
	// the overlapping region is a false positive of the hit strategy.
	fh, err := New(tab, Config{N: 143, H: 4, BinSize: 32, HitCountMode: true})
	if err != nil {
		t.Fatal(err)
	}
	candsH, _ := fh.Query(q)
	seenH := map[int]bool{}
	for _, c := range candsH {
		seenH[c.Bin] = true
	}
	if !seenH[binA] || !seenH[binB] {
		t.Errorf("hit counting should accept both regions; got bins %v (want %d and %d)", seenH, binA, binB)
	}
}

func TestSensitivityOnSimulatedRead(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 200000, GC: 0.5, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	tab := buildTable(t, g.Seq, 11)
	reads, err := readsim.SimulateN(g.Seq, 20, readsim.Config{Profile: readsim.PacBio, MeanLen: 3000, Seed: 54})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(tab, Config{N: 500, H: 20, BinSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := range reads {
		r := &reads[i]
		q := r.Seq
		if r.Reverse {
			q = dna.RevComp(q)
		}
		cands, _ := f.Query(q)
		trueBin := f.BinOf(r.RefStart, 0)
		hit := false
		for _, c := range cands {
			if c.Bin >= trueBin-2 && c.Bin <= trueBin+2 {
				hit = true
				break
			}
		}
		if hit {
			found++
		}
	}
	if found < 18 {
		t.Errorf("found true bin for %d/20 reads, want ≥ 18", found)
	}
}

func TestSaturatingCountersMatchExact(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ref := dna.Random(rng, 2000, 0.5)
	q := append(ref[500:700].Clone(), dna.Random(rng, 100, 0.5)...)
	tab := buildTable(t, ref, 5)
	// H ≤ 31−k+1 guarantees the crossing happens before saturation.
	for _, h := range []int{5, 10, 20, 27} {
		exact, err := New(tab, Config{N: 250, H: h, BinSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		sat, err := New(tab, Config{N: 250, H: h, BinSize: 64, SaturateCounts: true})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := exact.Query(q)
		b, _ := sat.Query(q)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("h=%d: saturating counters changed candidates: %v vs %v", h, a, b)
		}
	}
}

func TestThresholdMonotone(t *testing.T) {
	// Raising h can only shrink the candidate bin set (Fig. 11's
	// fine-grained knob).
	rng := rand.New(rand.NewSource(56))
	ref := dna.Random(rng, 5000, 0.5)
	q := append(ref[1000:1500].Clone(), dna.Random(rng, 200, 0.5)...)
	tab := buildTable(t, ref, 6)
	prevBins := -1
	for _, h := range []int{6, 12, 24, 48, 96} {
		f, err := New(tab, Config{N: 500, H: h, BinSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		cands, _ := f.Query(q)
		bins := map[int]bool{}
		for _, c := range cands {
			bins[c.Bin] = true
		}
		if prevBins >= 0 && len(bins) > prevBins {
			t.Errorf("h=%d produced %d bins, more than %d at lower h", h, len(bins), prevBins)
		}
		prevBins = len(bins)
	}
}

func TestRepeatedQueriesIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	ref := dna.Random(rng, 3000, 0.5)
	q1 := append(ref[100:400].Clone(), dna.Random(rng, 50, 0.5)...)
	q2 := ref[2000:2400].Clone()
	tab := buildTable(t, ref, 6)
	f, err := New(tab, Config{N: 400, H: 12, BinSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	a1, s1 := f.Query(q1)
	_, _ = f.Query(q2)
	a2, s2 := f.Query(q1)
	if !reflect.DeepEqual(a1, a2) {
		t.Errorf("bin state leaked between queries: %v vs %v", a1, a2)
	}
	if s1 != s2 {
		t.Errorf("stats differ between identical queries: %+v vs %+v", s1, s2)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	ref := dna.Random(rng, 2000, 0.5)
	q := append(dna.NewSeq("ACGNNGT"), ref[200:500]...)
	tab := buildTable(t, ref, 5)
	f, err := New(tab, Config{N: 100, H: 15, BinSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	cands, st := f.Query(q)
	if st.SeedsSkipped == 0 {
		t.Error("seeds over N should be counted as skipped")
	}
	if st.SeedsIssued+st.SeedsSkipped > 100 {
		t.Errorf("issued %d + skipped %d exceeds N=100", st.SeedsIssued, st.SeedsSkipped)
	}
	if st.Candidates != len(cands) {
		t.Errorf("stats candidates %d != len(candidates) %d", st.Candidates, len(cands))
	}
	if st.Hits == 0 || st.BinsTouched == 0 {
		t.Errorf("expected hits and touched bins, got %+v", st)
	}
	if st.BinsTouched > st.Hits {
		t.Errorf("bins touched %d > hits %d", st.BinsTouched, st.Hits)
	}
}

func TestConfigErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	ref := dna.Random(rng, 100, 0.5)
	tab := buildTable(t, ref, 4)
	cases := []Config{
		{N: 0, H: 5, BinSize: 64},
		{N: 10, H: 0, BinSize: 64},
		{N: 10, H: 5, BinSize: 0},
		{N: 10, H: 5, BinSize: 100}, // not a power of two
	}
	for i, cfg := range cases {
		if _, err := New(tab, cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
}

// TestResetGapRefires: two exact copies of a block on the same
// diagonal, separated by a long hitless stretch, must produce two
// candidates with ResetGap set and only one without.
func TestResetGapRefires(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const k, B = 8, 32
	blockA := dna.Random(rng, 64, 0.5)
	blockB := dna.Random(rng, 64, 0.5)
	gap := 3000
	// Reference: blockA ... blockB at the same diagonal offsets as in
	// the query.
	ref := append(blockA.Clone(), dna.Random(rng, gap, 0.5)...)
	ref = append(ref, blockB...)
	q := append(blockA.Clone(), dna.Random(rng, gap, 0.5)...)
	q = append(q, blockB...)

	tab := buildTable(t, ref, k)
	base := Config{N: len(q), H: 32, BinSize: B, Stride: 1}
	noReset, err := New(tab, base)
	if err != nil {
		t.Fatal(err)
	}
	withReset := base
	withReset.ResetGap = 1024
	reset, err := New(tab, withReset)
	if err != nil {
		t.Fatal(err)
	}
	countOnDiag := func(cands []Candidate) int {
		n := 0
		for _, c := range cands {
			if c.Bin == 0 || c.Bin == -1 {
				n++
			}
		}
		return n
	}
	a, _ := noReset.Query(q)
	b, _ := reset.Query(q)
	if got := countOnDiag(a); got != 1 {
		t.Errorf("without reset: %d main-diagonal candidates, want 1 (%v)", got, a)
	}
	if got := countOnDiag(b); got < 2 {
		t.Errorf("with reset: %d main-diagonal candidates, want ≥ 2 (%v)", got, b)
	}
	// The oracle must agree with the reset implementation too.
	want := naiveDSOFT(ref, q, k, withReset, reset.qPad)
	got, _ := reset.Query(q)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reset oracle mismatch:\ngot  %v\nwant %v", got, want)
	}
}

// TestTraceMatchesQuery: the accelerator trace must mirror Query's
// seed/hit accounting exactly (same seeds, same per-seed hit counts,
// same bins).
func TestTraceMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ref := dna.Random(rng, 3000, 0.5)
	q := append(ref[500:900].Clone(), dna.Random(rng, 100, 0.5)...)
	tab := buildTable(t, ref, 6)
	f, err := New(tab, Config{N: 300, H: 10, BinSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	trace := f.Trace(q)
	_, st := f.Query(q)
	if len(trace) != st.SeedsIssued {
		t.Errorf("trace has %d seeds, Query issued %d", len(trace), st.SeedsIssued)
	}
	hits := 0
	for _, bins := range trace {
		hits += len(bins)
	}
	if hits != st.Hits {
		t.Errorf("trace has %d hits, Query processed %d", hits, st.Hits)
	}
	if DefaultConfig(300, 10).BinSize != 128 {
		t.Error("DefaultConfig bin size should be the paper's 128")
	}
}

func TestShortQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	ref := dna.Random(rng, 500, 0.5)
	tab := buildTable(t, ref, 8)
	f, err := New(tab, Config{N: 100, H: 10, BinSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	cands, st := f.Query(dna.NewSeq("ACG")) // shorter than k
	if len(cands) != 0 || st.SeedsIssued != 0 {
		t.Errorf("short query produced work: %v %+v", cands, st)
	}
}

// QueryInto must append to the caller's buffer and return exactly what
// Query returns, and reusing the buffer across queries must not change
// candidates — the contract core.Darwin's steady-state map loop
// depends on.
func TestQueryIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ref := dna.Random(rng, 600, 0.5)
	f, err := New(buildTable(t, ref, 5), Config{N: 80, H: 6, BinSize: 16, Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf []Candidate
	for trial := 0; trial < 10; trial++ {
		start := rng.Intn(400)
		q := append(dna.Random(rng, 15, 0.5), ref[start:start+80]...)
		want, wantSt := f.Query(q)
		got, gotSt := f.QueryInto(q, buf[:0])
		buf = got
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("trial %d: QueryInto %v != Query %v", trial, got, want)
		}
		if gotSt != wantSt {
			t.Fatalf("trial %d: stats mismatch: %+v vs %+v", trial, gotSt, wantSt)
		}
	}
	// The sentinel: once grown, the buffer is reused, not reallocated.
	q := append(dna.Seq(nil), ref[100:250]...)
	f.QueryInto(q, buf[:0])
	if n := testing.AllocsPerRun(20, func() {
		out, _ := f.QueryInto(q, buf[:0])
		buf = out
	}); n > 0 {
		t.Errorf("QueryInto with a warm buffer allocates %.1f times per call, want 0", n)
	}
}
