package indexio

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/indexfile"
	"darwin/internal/shard"
)

func testRecords(seed int64, n int) []dna.Record {
	rng := rand.New(rand.NewSource(seed))
	// Two sequences with a repeated segment so the mask is non-empty
	// and multi-sequence metadata roundtrips.
	seg := dna.Random(rng, 150, 0.5)
	a := make(dna.Seq, 0, n*2/3)
	for len(a) < n/3 {
		a = append(a, seg...)
	}
	a = append(a, dna.Random(rng, n*2/3-len(a), 0.45)...)
	b := dna.Random(rng, n/3, 0.5)
	return []dna.Record{{Name: "chr1", Seq: a}, {Name: "chr2", Seq: b}}
}

func testConfig(k int) core.Config {
	cfg := core.DefaultConfig(k, 400, 20)
	return cfg
}

// writeIndex builds and writes an index to a temp path.
func writeIndex(t *testing.T, recs []dna.Record, cfg core.Config, spec core.ShardSpec) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.dwi")
	if _, err := WriteFile(path, recs, cfg, spec); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBitIdentityMonolithic is the tentpole invariant: a table mapped
// through build→save→load is bit-identical to a freshly built one —
// same arrays, and the same alignments for every read.
func TestBitIdentityMonolithic(t *testing.T) {
	for _, k := range []int{8, 11, 13} { // 13 exercises the sparse representation
		for _, win := range []int{0, 3} {
			recs := testRecords(51, 90_000)
			cfg := testConfig(k)
			cfg.TableOptions.MinimizerWindow = win
			path := writeIndex(t, recs, cfg, core.ShardSpec{})

			l, err := Open(path, cfg, core.ShardSpec{})
			if err != nil {
				t.Fatalf("k=%d win=%d: %v", k, win, err)
			}
			defer l.File.Close()
			fresh, freshRef, err := core.Open(core.OpenConfig{Records: recs, Core: cfg})
			if err != nil {
				t.Fatal(err)
			}

			loadedEng, ok := l.Mapper.(*core.Darwin)
			if !ok {
				t.Fatalf("k=%d win=%d: loaded mapper is %T, want *core.Darwin", k, win, l.Mapper)
			}
			freshEng := fresh.(*core.Darwin)
			if !reflect.DeepEqual(loadedEng.Table().Parts(), freshEng.Table().Parts()) {
				t.Errorf("k=%d win=%d: loaded table differs from freshly built (bit-identity violated)", k, win)
			}
			if !reflect.DeepEqual([]byte(l.Ref.Seq()), []byte(freshRef.Seq())) {
				t.Errorf("k=%d win=%d: loaded reference bytes differ", k, win)
			}
			for i := 0; i < l.Ref.NumSeqs(); i++ {
				if l.Ref.Name(i) != freshRef.Name(i) || l.Ref.Len(i) != freshRef.Len(i) {
					t.Errorf("k=%d win=%d: sequence %d metadata differs", k, win, i)
				}
			}

			// And the observable contract: identical alignments.
			reads := sampleReads(recs, 6, 800, 52)
			for ri, rd := range reads {
				a, _ := loadedEng.MapRead(rd)
				b, _ := freshEng.MapRead(rd)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("k=%d win=%d read %d: alignments differ between loaded and built", k, win, ri)
				}
			}
		}
	}
}

// TestBitIdentitySharded runs the same invariant through the sharded
// path for every shard-count shape the partitioner produces.
func TestBitIdentitySharded(t *testing.T) {
	recs := testRecords(53, 120_000)
	cfg := testConfig(11)
	for _, shards := range []int{1, 2, 4, 7} {
		spec := core.ShardSpec{Shards: shards}
		path := writeIndex(t, recs, cfg, spec)

		l, err := Open(path, cfg, spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		defer l.File.Close()
		loaded, ok := l.Mapper.(*shard.ScatterMapper)
		if !ok {
			t.Fatalf("shards=%d: loaded mapper is %T, want *shard.ScatterMapper", shards, l.Mapper)
		}
		ref := concatRef(t, recs, cfg)
		fresh, err := shard.New(ref, cfg, shard.Config{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}

		lg, fg := loaded.Set().Geometry(), fresh.Set().Geometry()
		if !reflect.DeepEqual(lg.Parts, fg.Parts) {
			t.Fatalf("shards=%d: loaded geometry %+v != fresh %+v", shards, lg.Parts, fg.Parts)
		}
		for i := range lg.Parts {
			lt, err := loaded.Set().Acquire(i)
			if err != nil {
				t.Fatalf("shards=%d shard %d: %v", shards, i, err)
			}
			ft, err := fresh.Set().Acquire(i)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(lt.Parts(), ft.Parts()) {
				t.Errorf("shards=%d shard %d: loaded table differs from freshly built", shards, i)
			}
		}

		reads := sampleReads(recs, 6, 800, 54)
		for ri, rd := range reads {
			a, _ := loaded.MapRead(rd)
			b, _ := fresh.MapRead(rd)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d read %d: alignments differ between loaded and built", shards, ri)
			}
		}
	}
}

// TestShardedFileZeroSpecAdoptsGeometry: a sharded index opened with a
// zero spec serves through the file's own partition.
func TestShardedFileZeroSpecAdoptsGeometry(t *testing.T) {
	recs := testRecords(55, 80_000)
	cfg := testConfig(11)
	path := writeIndex(t, recs, cfg, core.ShardSpec{Shards: 3})
	l, err := Open(path, cfg, core.ShardSpec{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.File.Close()
	sm, ok := l.Mapper.(*shard.ScatterMapper)
	if !ok {
		t.Fatalf("mapper is %T, want *shard.ScatterMapper", l.Mapper)
	}
	if got := len(sm.Set().Geometry().Parts); got != 3 {
		t.Errorf("adopted %d shards from file, want 3", got)
	}
}

// TestMismatchRejections: every parameter/geometry drift is rejected
// with the stable geometry_mismatch code, never silently served.
func TestMismatchRejections(t *testing.T) {
	recs := testRecords(56, 60_000)
	cfg := testConfig(11)
	mono := writeIndex(t, recs, cfg, core.ShardSpec{})
	sharded := writeIndex(t, recs, cfg, core.ShardSpec{Shards: 4})

	cases := []struct {
		name string
		path string
		cfg  core.Config
		spec core.ShardSpec
	}{
		{"wrong_k", mono, testConfig(12), core.ShardSpec{}},
		{"wrong_minimizer", mono, func() core.Config {
			c := testConfig(11)
			c.TableOptions.MinimizerWindow = 5
			return c
		}(), core.ShardSpec{}},
		{"mono_file_sharded_spec", mono, cfg, core.ShardSpec{Shards: 2}},
		{"sharded_file_wrong_count", sharded, cfg, core.ShardSpec{Shards: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(tc.path, tc.cfg, tc.spec)
			if err == nil {
				t.Fatal("mismatched open succeeded")
			}
			if code := indexfile.ErrCode(err); code != indexfile.CodeGeometryMismatch {
				t.Errorf("code %q (err %v), want %q", code, err, indexfile.CodeGeometryMismatch)
			}
		})
	}
}

// TestOpenConfigIndexPath: the core.Open front door loads through the
// registered opener.
func TestOpenConfigIndexPath(t *testing.T) {
	recs := testRecords(57, 50_000)
	cfg := testConfig(11)
	path := writeIndex(t, recs, cfg, core.ShardSpec{})
	eng, ref, err := core.Open(core.OpenConfig{Core: cfg, IndexPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumSeqs() != 2 {
		t.Errorf("loaded reference has %d sequences, want 2", ref.NumSeqs())
	}
	reads := sampleReads(recs, 2, 600, 58)
	alns, _ := eng.(*core.Darwin).MapRead(reads[0])
	if len(alns) == 0 {
		t.Error("read failed to map through an index-path engine")
	}
}

// sampleReads slices exact substrings out of the reference records —
// deterministic queries that are guaranteed to map.
func sampleReads(recs []dna.Record, n, readLen int, seed int64) []dna.Seq {
	rng := rand.New(rand.NewSource(seed))
	var out []dna.Seq
	for len(out) < n {
		rec := recs[rng.Intn(len(recs))]
		if len(rec.Seq) <= readLen {
			continue
		}
		p := rng.Intn(len(rec.Seq) - readLen)
		out = append(out, rec.Seq[p:p+readLen])
	}
	return out
}

// concatRef reproduces core.NewReference's concatenation so the fresh
// sharded engine sees the same global coordinates as the index build.
func concatRef(t *testing.T, recs []dna.Record, cfg core.Config) dna.Seq {
	t.Helper()
	ref, err := core.NewReference(recs, cfg.BinSize)
	if err != nil {
		t.Fatal(err)
	}
	return ref.Seq()
}
