// Package indexio glues the persistent index format (internal/
// indexfile) to the engine stack: it builds index content from
// reference records under an engine configuration, and loads a mapped
// index file back into a core.Mapper — monolithic or sharded — whose
// seed tables and reference are views over the file bytes.
//
// The package registers itself as core.Open's index opener, so any
// binary that imports it can set OpenConfig.IndexPath and load instead
// of build. It sits above core, shard, and indexfile (all of which it
// imports); indexfile itself stays a pure format package.
package indexio

import (
	"fmt"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/indexfile"
	"darwin/internal/seedtable"
	"darwin/internal/shard"
)

func init() {
	core.RegisterIndexOpener(func(path string, cfg core.Config, spec core.ShardSpec) (core.Mapper, *core.Reference, error) {
		l, err := Open(path, cfg, spec)
		if err != nil {
			return nil, nil, err
		}
		// The mapping stays alive for the life of the mapper (its seed
		// tables and reference alias the mapped bytes); it is reclaimed
		// at process exit, like the heap index it replaces.
		return l.Mapper, l.Ref, nil
	})
}

// resolveParams canonicalizes an engine configuration into the
// parameter block the file stores: masking defaults resolved exactly
// as seedtable.Options resolves them, so build-time and load-time
// configurations compare field-for-field.
func resolveParams(cfg core.Config) indexfile.Params {
	o := cfg.TableOptions
	mm := o.MaskMultiplier
	if mm == 0 {
		mm = 32
	}
	floor := o.MaskFloor
	if floor == 0 {
		floor = 8
	}
	return indexfile.Params{
		SeedK:           cfg.SeedK,
		MaskMultiplier:  mm,
		MaskFloor:       floor,
		NoMask:          o.NoMask,
		MinimizerWindow: o.MinimizerWindow,
		Pattern:         "", // core's engine configuration is contiguous k-mers
		BinSize:         cfg.BinSize,
	}
}

// Build constructs the index content for recs under cfg: the N-padded
// concatenated reference, the global high-frequency mask, and either
// one whole-reference seed table or one table per shard of the
// partition spec selects. The tables are built with the shared global
// mask (Options.Mask), exactly as the engines build them, so mapping
// through the saved content is bit-identical to mapping through a
// fresh engine.
func Build(recs []dna.Record, cfg core.Config, spec core.ShardSpec) (*indexfile.Index, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("indexio: no reference records")
	}
	ref, err := core.NewReference(recs, cfg.BinSize)
	if err != nil {
		return nil, err
	}
	seq := ref.Seq()
	mask, err := seedtable.ComputeMask(seq, cfg.SeedK, cfg.TableOptions)
	if err != nil {
		return nil, err
	}
	opts := cfg.TableOptions
	opts.Mask = mask

	params := resolveParams(cfg)
	params.MaskThreshold = mask.Threshold()
	idx := &indexfile.Index{
		Params:    params,
		Ref:       []byte(seq),
		MaskCodes: mask.Codes(),
	}
	for i := 0; i < ref.NumSeqs(); i++ {
		idx.Seqs = append(idx.Seqs, indexfile.SeqMeta{
			Name:   ref.Name(i),
			Offset: ref.Offset(i),
			Length: ref.Len(i),
		})
	}

	if !spec.Enabled() {
		t, err := seedtable.Build(seq, cfg.SeedK, opts)
		if err != nil {
			return nil, err
		}
		p := t.Parts()
		idx.Tables = []indexfile.TableMeta{{
			ExtentStart: 0, ExtentEnd: len(seq), CoreStart: 0, CoreEnd: len(seq),
			MaskedSeeds: p.MaskedSeeds, MaskedHits: p.MaskedHits,
		}}
		idx.Parts = []seedtable.Parts{p}
		return idx, nil
	}

	geo, err := shard.Partition(len(seq), spec.Shards, spec.ShardSize, spec.Overlap, shard.MinOverlap(cfg), cfg.BinSize)
	if err != nil {
		return nil, err
	}
	idx.ShardCount = len(geo.Parts)
	idx.ShardSize = geo.ShardSize
	idx.Overlap = geo.Overlap
	for _, part := range geo.Parts {
		t, err := seedtable.BuildRange(seq, part.Extent.Start, part.Extent.End, cfg.SeedK, opts)
		if err != nil {
			return nil, fmt.Errorf("indexio: building shard %d: %w", part.Index, err)
		}
		p := t.Parts()
		idx.Tables = append(idx.Tables, indexfile.TableMeta{
			ExtentStart: part.Extent.Start,
			ExtentEnd:   part.Extent.End,
			CoreStart:   part.Core.Start,
			CoreEnd:     part.Core.End,
			MaskedSeeds: p.MaskedSeeds,
			MaskedHits:  p.MaskedHits,
		})
		idx.Parts = append(idx.Parts, p)
	}
	return idx, nil
}

// WriteFile builds the index for recs and serializes it to path
// atomically. Returns the written content's description.
func WriteFile(path string, recs []dna.Record, cfg core.Config, spec core.ShardSpec) (*indexfile.Index, error) {
	idx, err := Build(recs, cfg, spec)
	if err != nil {
		return nil, err
	}
	if err := indexfile.Write(path, idx); err != nil {
		return nil, err
	}
	return idx, nil
}

// Loaded is an index loaded from a file: the mapper and reference are
// views over File's mapped bytes, so File must stay open as long as
// either is in use.
type Loaded struct {
	Mapper core.Mapper
	Ref    *core.Reference
	File   *indexfile.File
}

// Open maps the index file at path and assembles a mapper from it
// under cfg/spec. The file's parameters must match cfg exactly, and
// its shard geometry must match what spec would partition (a sharded
// file with a zero spec adopts the file's geometry; a monolithic file
// with a sharded spec — or vice versa — is a geometry mismatch).
// Rejections are indexfile.FormatErrors with stable codes.
func Open(path string, cfg core.Config, spec core.ShardSpec) (*Loaded, error) {
	f, err := indexfile.Open(path, indexfile.Options{})
	if err != nil {
		return nil, err
	}
	l, err := assemble(f, cfg, spec)
	if err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// assemble builds the mapper and reference views over an open file.
func assemble(f *indexfile.File, cfg core.Config, spec core.ShardSpec) (*Loaded, error) {
	info := f.Info()
	if err := checkParams(f.Path(), info.Params, resolveParams(cfg)); err != nil {
		return nil, err
	}
	seq, err := f.Ref()
	if err != nil {
		return nil, err
	}
	names := make([]string, len(info.Seqs))
	offsets := make([]int, len(info.Seqs))
	lengths := make([]int, len(info.Seqs))
	for i, s := range info.Seqs {
		names[i], offsets[i], lengths[i] = s.Name, s.Offset, s.Length
	}
	ref, err := core.NewReferenceFromMeta(seq, names, offsets, lengths)
	if err != nil {
		return nil, &indexfile.FormatError{Code: indexfile.CodeBadHeader, Path: f.Path(), Detail: err.Error()}
	}

	if info.ShardCount == 0 {
		if spec.Enabled() {
			return nil, &indexfile.FormatError{
				Code: indexfile.CodeGeometryMismatch, Path: f.Path(),
				Detail: fmt.Sprintf("index is monolithic but a sharded engine was requested (shards=%d size=%d)", spec.Shards, spec.ShardSize),
			}
		}
		table, err := f.Table(0)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewWithTable(seq, table, cfg)
		if err != nil {
			return nil, &indexfile.FormatError{Code: indexfile.CodeGeometryMismatch, Path: f.Path(), Detail: err.Error()}
		}
		return &Loaded{Mapper: eng, Ref: ref, File: f}, nil
	}

	geo := fileGeometry(info, cfg.BinSize)
	if spec.Enabled() {
		want, err := shard.Partition(len(seq), spec.Shards, spec.ShardSize, spec.Overlap, shard.MinOverlap(cfg), cfg.BinSize)
		if err != nil {
			return nil, err
		}
		if err := checkGeometry(f.Path(), geo, want); err != nil {
			return nil, err
		}
	}
	set, err := shard.NewSetPrebuilt(seq, cfg.SeedK, geo, spec.MaxResidentBytes, f.Table)
	if err != nil {
		return nil, &indexfile.FormatError{Code: indexfile.CodeGeometryMismatch, Path: f.Path(), Detail: err.Error()}
	}
	m, err := shard.FromSet(set, cfg)
	if err != nil {
		return nil, err
	}
	return &Loaded{Mapper: m, Ref: ref, File: f}, nil
}

// fileGeometry reconstructs the shard partition recorded in the file.
func fileGeometry(info indexfile.Info, binSize int) *shard.Geometry {
	geo := &shard.Geometry{
		RefLen:    info.RefLen,
		ShardSize: info.ShardSize,
		Overlap:   info.Overlap,
		BinSize:   binSize,
	}
	for i, t := range info.Tables {
		geo.Parts = append(geo.Parts, shard.Part{
			Index:  i,
			Core:   shard.Span{Start: t.CoreStart, End: t.CoreEnd},
			Extent: shard.Span{Start: t.ExtentStart, End: t.ExtentEnd},
		})
	}
	return geo
}

// checkParams rejects an index built under different seeding
// parameters than the runtime engine expects. Everything that shapes
// the seed table must match; MaskThreshold is derived from the rest
// and the reference, so it is not compared.
func checkParams(path string, got, want indexfile.Params) error {
	mismatch := func(field string, g, w any) error {
		return &indexfile.FormatError{
			Code: indexfile.CodeGeometryMismatch, Path: path,
			Detail: fmt.Sprintf("index %s is %v but the engine is configured for %v", field, g, w),
		}
	}
	switch {
	case got.SeedK != want.SeedK:
		return mismatch("seed size k", got.SeedK, want.SeedK)
	case got.MaskMultiplier != want.MaskMultiplier:
		return mismatch("mask multiplier", got.MaskMultiplier, want.MaskMultiplier)
	case got.MaskFloor != want.MaskFloor:
		return mismatch("mask floor", got.MaskFloor, want.MaskFloor)
	case got.NoMask != want.NoMask:
		return mismatch("masking", maskMode(got.NoMask), maskMode(want.NoMask))
	case got.MinimizerWindow != want.MinimizerWindow:
		return mismatch("minimizer window", got.MinimizerWindow, want.MinimizerWindow)
	case got.Pattern != want.Pattern:
		return mismatch("spaced pattern", pattern(got.Pattern), pattern(want.Pattern))
	case got.BinSize != want.BinSize:
		return mismatch("bin size B", got.BinSize, want.BinSize)
	}
	return nil
}

func maskMode(noMask bool) string {
	if noMask {
		return "disabled"
	}
	return "enabled"
}

func pattern(p string) string {
	if p == "" {
		return "contiguous"
	}
	return p
}

// checkGeometry rejects a sharded index whose recorded partition
// differs from the one the runtime spec would produce — shard-local
// candidate merging is only exact when boundaries agree.
func checkGeometry(path string, got, want *shard.Geometry) error {
	mismatch := func(format string, args ...any) error {
		return &indexfile.FormatError{Code: indexfile.CodeGeometryMismatch, Path: path, Detail: fmt.Sprintf(format, args...)}
	}
	if got.ShardSize != want.ShardSize || got.Overlap != want.Overlap || len(got.Parts) != len(want.Parts) {
		return mismatch("index partition (%d shards of %d bp, overlap %d) != requested (%d shards of %d bp, overlap %d)",
			len(got.Parts), got.ShardSize, got.Overlap, len(want.Parts), want.ShardSize, want.Overlap)
	}
	for i := range got.Parts {
		if got.Parts[i].Core != want.Parts[i].Core || got.Parts[i].Extent != want.Parts[i].Extent {
			return mismatch("shard %d spans core %+v extent %+v in the index but core %+v extent %+v under the requested geometry",
				i, got.Parts[i].Core, got.Parts[i].Extent, want.Parts[i].Core, want.Parts[i].Extent)
		}
	}
	return nil
}
