package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"darwin/internal/core"
	"darwin/internal/faults"
	"darwin/internal/obs"
	"darwin/internal/sam"
	"darwin/internal/server"
	"darwin/internal/shard"
)

// Router observability. The cluster/* namespace is the router's own;
// worker-side scatter work shows up under server/* on each worker.
var (
	cRequests       = obs.Default.Counter("cluster/requests")
	cRequestsOK     = obs.Default.Counter("cluster/requests_ok")
	cRequestsFailed = obs.Default.Counter("cluster/requests_failed")
	cSubreqs        = obs.Default.Counter("cluster/scatter_subreqs")
	cSubreqFails    = obs.Default.Counter("cluster/scatter_subreq_fails")
	cFailovers      = obs.Default.Counter("cluster/replica_failovers")
	cHedgeFired     = obs.Default.Counter("cluster/hedge_fired")
	cHedgeWins      = obs.Default.Counter("cluster/hedge_wins")
	cHedgeCancels   = obs.Default.Counter("cluster/hedge_cancelled")
	cBreakerOpens   = obs.Default.Counter("cluster/breaker_opens")
	cBreakerFast    = obs.Default.Counter("cluster/breaker_fast_fails")
	gWorkers        = obs.Default.Gauge("cluster/workers")
	hSubreqLatency  = obs.Default.Histogram("cluster/subreq_latency_ms", 0, 10000, 100)

	fpScatter = faults.Default.Point("cluster/scatter")
)

// Config assembles a router.
type Config struct {
	// Workers is the cluster roster (see ParseWorkers).
	Workers []Worker
	// Replication is the per-shard replica count (default 2, clamped
	// to the roster size).
	Replication int
	// HedgeQuantile picks the per-worker latency quantile after which
	// a sub-request is hedged to the next replica (default 0.9).
	HedgeQuantile float64
	// HedgeMin and HedgeMax clamp the adaptive hedge delay; HedgeMax
	// also serves as the delay while a worker's latency window is
	// still empty (defaults 2ms and 2s).
	HedgeMin, HedgeMax time.Duration
	// HedgeDelay, when positive, overrides the adaptive delay with a
	// fixed one — deterministic hedging for tests and smoke scripts.
	HedgeDelay time.Duration
	// RequestTimeout caps one ingress request (default 60s).
	RequestTimeout time.Duration
	// MaxReadsPerRequest rejects oversized requests (default 1024).
	MaxReadsPerRequest int
	// MaxBodyBytes caps ingress bodies (default 64 MiB).
	MaxBodyBytes int64
	// BreakerThreshold consecutive sub-request failures open a
	// worker's breaker (default 3); BreakerCooldown is how long it
	// rejects before a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Logger receives structured logs (default slog.Default()).
	Logger *slog.Logger
	// Client performs sub-requests (default: http.Client with no
	// timeout — per-attempt contexts bound every call).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.9
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 2 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 2 * time.Second
	}
	if c.HedgeMax < c.HedgeMin {
		c.HedgeMax = c.HedgeMin
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxReadsPerRequest <= 0 {
		c.MaxReadsPerRequest = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// workerState is the router's per-worker view: breaker and latency
// window, both shared across all shards the worker serves.
type workerState struct {
	Worker
	br  *server.Breaker
	lat *obs.RollingQuantile
}

// Router is the stateless scatter-gather tier: it owns no index, only
// the cluster map, a layout-only Reference for coordinate translation,
// and per-worker breakers/latency windows. Everything else is
// re-derived per request, so any number of routers can front the same
// worker fleet.
type Router struct {
	cfg     Config
	cmap    *Map
	workers []*workerState
	log     *slog.Logger
	client  *http.Client
	mux     *http.ServeMux

	// Cluster-wide invariants learned at Probe time.
	ref           *core.Reference
	sq            []sam.RefSeq
	shardCount    int
	maxCandidates int
	fingerprint   string

	ready    atomic.Bool
	draining atomic.Bool
}

// New assembles a router; call Probe to learn the cluster's geometry
// and mark it ready.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	cmap, err := NewMap(cfg.Workers, cfg.Replication)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		cmap:   cmap,
		log:    cfg.Logger,
		client: cfg.Client,
	}
	for _, w := range cmap.Workers {
		rt.workers = append(rt.workers, &workerState{
			Worker: w,
			br:     server.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			lat:    obs.NewRollingQuantile(time.Minute),
		})
	}
	gWorkers.Set(int64(len(rt.workers)))
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/v1/map", rt.handleMap)
	rt.mux.HandleFunc("/v1/cluster", rt.handleTopology)
	rt.mux.Handle("/metrics", obs.MetricsHandler(obs.Default))
	return rt, nil
}

// Probe interrogates every worker's /v1/shards, checks the advertised
// geometries, reference layouts, fingerprints, and truncation limits
// agree, and checks each worker's owned set is exactly what the shared
// cluster map assigns it. Any disagreement is a boot failure: a
// cluster that cannot merge bit-identically must not serve.
func (rt *Router) Probe(ctx context.Context) error {
	var first *server.ShardsResponse
	for _, ws := range rt.workers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.URL+"/v1/shards", nil)
		if err != nil {
			return err
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return fmt.Errorf("cluster: probing %s (%s): %w", ws.Name, ws.URL, err)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("cluster: probing %s: %w", ws.Name, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster: probing %s: HTTP %d: %s", ws.Name, resp.StatusCode, bytes.TrimSpace(body))
		}
		var sr server.ShardsResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			return fmt.Errorf("cluster: probing %s: %w", ws.Name, err)
		}
		if sr.Worker != ws.Name {
			return fmt.Errorf("cluster: %s identifies as %q — roster and -worker-name disagree", ws.URL, sr.Worker)
		}
		want, err := rt.cmap.OwnedBy(ws.Name, sr.Geometry.Shards)
		if err != nil {
			return err
		}
		if fmt.Sprint(want) != fmt.Sprint(sr.Owned) {
			return fmt.Errorf("cluster: %s owns shards %v but the map assigns %v — mismatched roster or replication",
				ws.Name, sr.Owned, want)
		}
		if first == nil {
			first = &sr
			continue
		}
		if sr.Geometry != first.Geometry {
			return fmt.Errorf("cluster: %s geometry %+v differs from %+v", ws.Name, sr.Geometry, first.Geometry)
		}
		if sr.Fingerprint != first.Fingerprint {
			return fmt.Errorf("cluster: %s serves index %q, others %q", ws.Name, sr.Fingerprint, first.Fingerprint)
		}
		if sr.MaxCandidates != first.MaxCandidates {
			return fmt.Errorf("cluster: %s max_candidates %d differs from %d", ws.Name, sr.MaxCandidates, first.MaxCandidates)
		}
	}
	ref, err := core.NewReferenceLayout(first.Ref.Names, first.Ref.Offsets, first.Ref.Lengths, first.Ref.TotalLen)
	if err != nil {
		return fmt.Errorf("cluster: reference layout: %w", err)
	}
	rt.ref = ref
	rt.sq = rt.sq[:0]
	for i := 0; i < ref.NumSeqs(); i++ {
		rt.sq = append(rt.sq, sam.RefSeq{Name: ref.Name(i), Len: ref.Len(i)})
	}
	rt.shardCount = first.Geometry.Shards
	rt.maxCandidates = first.MaxCandidates
	rt.fingerprint = first.Fingerprint
	rt.ready.Store(true)
	return nil
}

// Ready reports whether the cluster probe succeeded and the router is
// not draining.
func (rt *Router) Ready() bool { return rt.ready.Load() && !rt.draining.Load() }

// StartDrain flips /readyz to 503 and rejects new /v1/map requests;
// in-flight scatters complete under the HTTP server's shutdown grace.
func (rt *Router) StartDrain() { rt.draining.Store(true) }

// attemptResult is one replica attempt's outcome.
type attemptResult struct {
	results []shard.ReadScatter
	worker  int
	hedged  bool
	err     error
}

// hedgeDelay picks how long to wait on a worker before hedging its
// sub-request to the next replica: the fixed override if configured,
// else the worker's rolling latency quantile clamped to
// [HedgeMin, HedgeMax] — an empty window hedges at HedgeMax, so a
// cold router is conservative rather than doubling load.
func (rt *Router) hedgeDelay(ws *workerState) time.Duration {
	if rt.cfg.HedgeDelay > 0 {
		return rt.cfg.HedgeDelay
	}
	q := ws.lat.Quantile(time.Minute, rt.cfg.HedgeQuantile)
	d := time.Duration(q * float64(time.Millisecond))
	if d < rt.cfg.HedgeMin {
		if q <= 0 {
			return rt.cfg.HedgeMax
		}
		return rt.cfg.HedgeMin
	}
	if d > rt.cfg.HedgeMax {
		return rt.cfg.HedgeMax
	}
	return d
}

// scatterShard resolves one shard's sub-request against its replica
// set: the primary first, an immediate failover on error, and a hedge
// to the next replica once the primary outlives its latency quantile.
// Exactly one successful response is returned; the moment it arrives
// every other in-flight attempt's context is cancelled (the loser's
// work is abandoned, not merged — the exactly-one-merge property the
// duplicate guard in shard.MergeReadScatters backstops).
func (rt *Router) scatterShard(ctx context.Context, span *obs.Span, shardID int, body []byte, nReads int, reqID, traceparent string) ([]shard.ReadScatter, error) {
	replicas := rt.cmap.ReplicasFor(shardID)
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan attemptResult, len(replicas))
	next := 0
	inflight := 0
	// launch starts the next replica attempt that its breaker admits.
	launch := func(hedged bool) bool {
		for next < len(replicas) {
			wi := replicas[next]
			next++
			ws := rt.workers[wi]
			if !ws.br.Allow() {
				cBreakerFast.Inc()
				continue
			}
			if hedged {
				cHedgeFired.Inc()
			}
			cSubreqs.Inc()
			inflight++
			go rt.attempt(ctx, ws, wi, hedged, shardID, body, nReads, reqID, traceparent, results)
			return true
		}
		return false
	}
	if !launch(false) {
		return nil, fmt.Errorf("shard %d: no replica available (breakers open)", shardID)
	}
	primary := rt.workers[replicas[0]]
	hedge := time.NewTimer(rt.hedgeDelay(primary))
	defer hedge.Stop()

	var lastErr error
	for {
		select {
		case res := <-results:
			inflight--
			if res.err == nil {
				if res.hedged {
					cHedgeWins.Inc()
				}
				if inflight > 0 {
					cHedgeCancels.Add(int64(inflight))
				}
				span.SetLabel("worker", rt.cmap.Workers[res.worker].Name)
				if res.hedged {
					span.SetAttr("hedged", 1)
				}
				return res.results, nil
			}
			cSubreqFails.Inc()
			lastErr = res.err
			rt.log.Warn("scatter sub-request failed",
				"shard", shardID, "worker", rt.cmap.Workers[res.worker].Name,
				"hedged", res.hedged, "request_id", reqID, "error", res.err)
			// Immediate failover: a failed replica should not make the
			// request wait out the hedge timer.
			if launch(res.hedged) {
				cFailovers.Inc()
			} else if inflight == 0 {
				return nil, fmt.Errorf("shard %d: all replicas failed: %w", shardID, lastErr)
			}
		case <-hedge.C:
			launch(true)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// attempt performs one sub-request against one worker, feeding breaker
// and latency state. The cluster/scatter fault point fires per attempt
// — per backend — so chaos runs exercise failover and breaker opens
// exactly like organic worker failures.
func (rt *Router) attempt(ctx context.Context, ws *workerState, wi int, hedged bool, shardID int, body []byte, nReads int, reqID, traceparent string, out chan<- attemptResult) {
	start := time.Now()
	fail := func(err error) {
		// A canceled context here means the router gave up on this
		// attempt itself — a sibling hedge won, or the caller went
		// away. The worker did nothing wrong, so its breaker must not
		// be charged, or routine hedging against a slow-but-healthy
		// primary would eventually open its breaker.
		if ctx.Err() != context.Canceled {
			if ws.br.ReportFailure() {
				cBreakerOpens.Inc()
				rt.log.Warn("worker breaker opened", "worker", ws.Name)
			}
		}
		out <- attemptResult{worker: wi, hedged: hedged, err: err}
	}
	if err := fpScatter.Fire(); err != nil {
		fail(err)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ws.URL+"/v1/cluster/scatter", bytes.NewReader(body))
	if err != nil {
		fail(err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	// Identity propagation: the sub-request carries the ingress
	// request ID (and the client's traceparent, verbatim) so worker
	// logs, spans, and error envelopes all join the router's trace.
	req.Header.Set("X-Request-ID", reqID)
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		fail(err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fail(fmt.Errorf("worker %s: HTTP %d: %s", ws.Name, resp.StatusCode, bytes.TrimSpace(msg)))
		return
	}
	var sr server.ScatterResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		fail(fmt.Errorf("worker %s: decoding scatter response: %w", ws.Name, err))
		return
	}
	if len(sr.Results) != nReads {
		fail(fmt.Errorf("worker %s: %d results for %d reads", ws.Name, len(sr.Results), nReads))
		return
	}
	ws.br.Success()
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	ws.lat.Observe(ms)
	hSubreqLatency.Observe(ms)
	out <- attemptResult{results: sr.Results, worker: wi, hedged: hedged}
}

// scatterAll fans one batch out to every shard concurrently and
// returns per-shard sub-responses, failing if any shard cannot be
// resolved — a partial reference would break bit-identity, so there
// are no partial answers.
func (rt *Router) scatterAll(ctx context.Context, span *obs.Span, reads []server.ReadInput, timeoutMS int, reqID, traceparent string) ([][]shard.ReadScatter, error) {
	byShard := make([][]shard.ReadScatter, rt.shardCount)
	errs := make([]error, rt.shardCount)
	var wg sync.WaitGroup
	for s := 0; s < rt.shardCount; s++ {
		body, err := json.Marshal(server.ScatterRequest{Shards: []int{s}, Reads: reads, TimeoutMS: timeoutMS})
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(s int, body []byte) {
			defer wg.Done()
			sub := span.StartChild("cluster.scatter")
			if sub != nil {
				sub.SetAttr("shard", int64(s))
			}
			byShard[s], errs[s] = rt.scatterShard(ctx, sub, s, body, len(reads), reqID, traceparent)
			sub.End()
		}(s, body)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return byShard, nil
}

// mergeAll recombines per-shard sub-responses into per-read results,
// reproducing the monolithic engine's candidate order, truncation, and
// alignment sort via shard.MergeReadScatters.
func (rt *Router) mergeAll(byShard [][]shard.ReadScatter, nReads int) ([]core.MapResult, error) {
	out := make([]core.MapResult, nReads)
	parts := make([]shard.ReadScatter, len(byShard))
	for i := 0; i < nReads; i++ {
		for s := range byShard {
			parts[s] = byShard[s][i]
		}
		res, err := shard.MergeReadScatters(rt.maxCandidates, parts)
		if err != nil {
			return nil, fmt.Errorf("read %d: %w", i, err)
		}
		res.Index = i
		out[i] = res
	}
	return out, nil
}
