// Package cluster distributes darwind across processes: a static
// cluster map assigns reference shards to workers by rendezvous
// hashing with N-way replication, and a stateless router
// (cmd/darwin-router) scatters read batches to shard owners, hedges
// slow replicas, and merges sub-responses bit-identically to the
// monolithic engine via internal/shard's global-coordinate merge.
//
// Rendezvous (highest-random-weight) hashing was chosen over a hash
// ring for its exact minimal-disruption property at this scale: each
// (worker, shard) pair gets an independent score, a shard's replica
// set is the top-N workers by score, and adding or removing a worker
// can only move the shards that worker scores into the top N — every
// other assignment is untouched, with no virtual-node tuning.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Worker names one darwind worker process in the cluster map.
type Worker struct {
	// Name is the stable identity shards are hashed against. Renaming
	// a worker reassigns shards; changing only its URL does not.
	Name string
	// URL is the worker's base URL (scheme://host:port).
	URL string
}

// Map is the static cluster topology: the worker roster and the
// replication factor. Workers and routers must agree on it — both
// sides derive shard ownership from the same rendezvous scores, so
// the map is configuration, not coordination.
type Map struct {
	Workers     []Worker
	Replication int
}

// ParseWorkers parses a "name=url,name=url" roster. URLs without a
// scheme get "http://".
func ParseWorkers(spec string) ([]Worker, error) {
	var out []Worker
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, url, ok := strings.Cut(item, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("cluster: worker %q: want name=url", item)
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		out = append(out, Worker{Name: name, URL: strings.TrimRight(url, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty worker roster")
	}
	return out, nil
}

// NewMap validates a roster into a Map. Replication is clamped to the
// roster size; names must be unique (they are hash inputs).
func NewMap(workers []Worker, replication int) (*Map, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: empty worker roster")
	}
	seen := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w.Name == "" {
			return nil, fmt.Errorf("cluster: worker with empty name")
		}
		if seen[w.Name] {
			return nil, fmt.Errorf("cluster: duplicate worker name %q", w.Name)
		}
		seen[w.Name] = true
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(workers) {
		replication = len(workers)
	}
	return &Map{Workers: append([]Worker(nil), workers...), Replication: replication}, nil
}

// rendezvousScore is the highest-random-weight score of (worker,
// shard): FNV-64a over the worker name, a separator, and the shard
// index in decimal, pushed through a 64-bit finalizer. Deterministic
// across processes and Go versions — it is part of the wire contract
// between router and workers.
//
// The finalizer (murmur3's fmix64) is load-bearing: the shard digits
// are the last bytes hashed, and FNV-1a's one-multiply-per-byte
// diffusion leaves them mostly in the low bits, while ranking is
// decided by the high bits — without it, scores rank by worker name
// almost independently of shard and ownership skews wildly.
func rendezvousScore(name string, shard int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	fmt.Fprintf(h, "%d", shard)
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ReplicasFor returns the indices (into Workers) of the shard's
// replica set: the Replication workers with the highest rendezvous
// scores, ordered best-first — the first entry is the shard's primary,
// the rest are hedge/failover targets. Ties break by name so the
// order is total.
func (m *Map) ReplicasFor(shard int) []int {
	idx := make([]int, len(m.Workers))
	scores := make([]uint64, len(m.Workers))
	for i := range m.Workers {
		idx[i] = i
		scores[i] = rendezvousScore(m.Workers[i].Name, shard)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return m.Workers[ia].Name < m.Workers[ib].Name
	})
	return idx[:m.Replication]
}

// OwnedBy returns the sorted shard indices (out of shards total) whose
// replica sets include the named worker — the set a worker passes to
// server.WorkerConfig.OwnedShards at boot.
func (m *Map) OwnedBy(name string, shards int) ([]int, error) {
	found := false
	for _, w := range m.Workers {
		if w.Name == name {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: worker %q not in the roster", name)
	}
	var owned []int
	for s := 0; s < shards; s++ {
		for _, wi := range m.ReplicasFor(s) {
			if m.Workers[wi].Name == name {
				owned = append(owned, s)
				break
			}
		}
	}
	return owned, nil
}
