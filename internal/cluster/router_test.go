package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darwin/internal/server"
	"darwin/internal/shard"
)

// testCluster wires fake workers behind a probed router. The fakes
// speak the real wire contract (GET /v1/shards, POST
// /v1/cluster/scatter with server's JSON types), so these tests cover
// the router's half of the protocol end to end without an index.
type testCluster struct {
	rt      *Router
	cmap    *Map
	workers []Worker
}

const (
	testShards   = 2
	testMaxCands = 8
)

var testRefMeta = server.RefMeta{
	Names: []string{"chr1"}, Offsets: []int{0}, Lengths: []int{100}, TotalLen: 100,
}

var testGeo = server.GeometryMeta{
	RefLen: 100, ShardSize: 50, Overlap: 0, BinSize: 16, Shards: testShards,
}

// startCluster boots one fake worker per scatter handler (named
// "worker-0", "worker-1", ...) plus a probed router over them.
// Handlers may be nil for a worker that answers scatters with empty
// results.
func startCluster(t *testing.T, cfg Config, scatter []http.HandlerFunc) *testCluster {
	t.Helper()
	tc := &testCluster{}
	// The map hashes names only, so replica sets are computable before
	// the servers exist; handlers read ownership through this pointer
	// once the roster (with real URLs) is final.
	for i, fn := range scatter {
		name := fmt.Sprintf("worker-%d", i)
		if fn == nil {
			fn = scatterRespond(nil)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/shards", func(w http.ResponseWriter, _ *http.Request) {
			owned, err := tc.cmap.OwnedBy(name, testShards)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			json.NewEncoder(w).Encode(server.ShardsResponse{
				Worker: name, Owned: owned, Geometry: testGeo,
				Ref: testRefMeta, MaxCandidates: testMaxCands,
			})
		})
		mux.HandleFunc("/v1/cluster/scatter", fn)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		tc.workers = append(tc.workers, Worker{Name: name, URL: srv.URL})
	}
	var err error
	tc.cmap, err = NewMap(tc.workers, cfg.Replication)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = tc.workers
	tc.rt, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.rt.Probe(t.Context()); err != nil {
		t.Fatalf("probe: %v", err)
	}
	return tc
}

// scatterRespond answers a scatter request with the given candidates
// on read 0's forward strand (every other read comes back empty).
func scatterRespond(cands []shard.CandExt) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req server.ScatterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]shard.ReadScatter, len(req.Reads))
		for i := range results {
			results[i] = shard.ReadScatter{Read: i}
		}
		if len(results) > 0 {
			results[0].Strand[0] = cands
		}
		json.NewEncoder(w).Encode(server.ScatterResponse{Results: results})
	}
}

func postMap(t *testing.T, tc *testCluster, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	body := `{"reads":[{"name":"r1","seq":"ACGTACGTACGT"}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/map", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	tc.rt.Handler().ServeHTTP(rec, req)
	return rec
}

// TestRouterIdentityPropagation: the ingress request ID and the
// client's traceparent ride every scatter sub-request verbatim, and
// the merged NDJSON line carries the same ID — one trace across hops.
func TestRouterIdentityPropagation(t *testing.T) {
	var mu sync.Mutex
	type hop struct{ reqID, traceparent string }
	var hops []hop
	record := func(inner http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hops = append(hops, hop{r.Header.Get("X-Request-ID"), r.Header.Get("traceparent")})
			mu.Unlock()
			inner(w, r)
		}
	}
	tc := startCluster(t, Config{Replication: 1}, []http.HandlerFunc{
		record(scatterRespond(nil)), record(scatterRespond(nil)),
	})

	const wantID = "req-ident-123"
	const wantTP = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	rec := postMap(t, tc, map[string]string{"X-Request-ID": wantID, "traceparent": wantTP})
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Request-ID"); got != wantID {
		t.Errorf("response X-Request-ID %q, want %q", got, wantID)
	}
	var line server.MapResponseLine
	if err := json.Unmarshal(rec.Body.Bytes(), &line); err != nil {
		t.Fatalf("response line: %v", err)
	}
	if line.RequestID != wantID {
		t.Errorf("NDJSON request_id %q, want %q", line.RequestID, wantID)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hops) != testShards {
		t.Fatalf("%d sub-requests, want %d", len(hops), testShards)
	}
	for i, h := range hops {
		if h.reqID != wantID || h.traceparent != wantTP {
			t.Errorf("hop %d: got (%q, %q), want (%q, %q)", i, h.reqID, h.traceparent, wantID, wantTP)
		}
	}
}

// TestRouterHedgeCancelsLoser: when the primary stalls, the hedge
// fires the next replica, the replica's answer wins, and the stalled
// primary's sub-request context is cancelled — the loser is abandoned,
// not merged.
func TestRouterHedgeCancelsLoser(t *testing.T) {
	// Which worker is primary for a shard is hash-determined, so the
	// stall adapts at request time: whichever worker is primary for
	// the requested shard stalls until its context is cancelled, and
	// the secondary answers. stall gates the behavior so the boot
	// probe and map construction happen on fast paths.
	var stall atomic.Bool
	var cm *Map
	cancelled := make(chan string, 4)
	slowIfPrimary := func(idx int) http.HandlerFunc {
		name := fmt.Sprintf("worker-%d", idx)
		return func(w http.ResponseWriter, r *http.Request) {
			var req server.ScatterRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if stall.Load() && cm.ReplicasFor(req.Shards[0])[0] == idx {
				<-r.Context().Done()
				cancelled <- name
				return
			}
			results := make([]shard.ReadScatter, len(req.Reads))
			for i := range results {
				results[i] = shard.ReadScatter{Read: i}
			}
			json.NewEncoder(w).Encode(server.ScatterResponse{Results: results})
		}
	}
	hedgeFiredBefore := cHedgeFired.Value()
	hedgeWinsBefore := cHedgeWins.Value()
	breakerOpensBefore := cBreakerOpens.Value()
	// BreakerThreshold 1 makes the no-breaker-charge assertion below
	// deterministic: if losing a hedge counted as a worker failure,
	// one lost hedge would open the loser's breaker.
	tc := startCluster(t, Config{Replication: 2, HedgeDelay: 5 * time.Millisecond, BreakerThreshold: 1},
		[]http.HandlerFunc{slowIfPrimary(0), slowIfPrimary(1)})
	cm = tc.cmap
	stall.Store(true)

	rec := postMap(t, tc, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	// Both shards' primaries stalled, so both hedges fired and won.
	if got := cHedgeFired.Value() - hedgeFiredBefore; got != testShards {
		t.Errorf("hedge_fired delta %d, want %d", got, testShards)
	}
	if got := cHedgeWins.Value() - hedgeWinsBefore; got != testShards {
		t.Errorf("hedge_wins delta %d, want %d", got, testShards)
	}
	// The losers' contexts must be cancelled promptly — not left to
	// dangle until the 60s request deadline.
	for i := 0; i < testShards; i++ {
		select {
		case <-cancelled:
		case <-time.After(5 * time.Second):
			t.Fatalf("loser %d of %d: context never cancelled", i+1, testShards)
		}
	}
	// Losing a hedge is router-initiated cancellation, not a worker
	// failure: the stalled-but-healthy primaries' breakers must stay
	// closed, or routine hedging would eject slow workers. The loser's
	// failure path runs just after its context cancels, so give it a
	// beat before asserting nothing was charged.
	time.Sleep(100 * time.Millisecond)
	if got := cBreakerOpens.Value() - breakerOpensBefore; got != 0 {
		t.Errorf("breaker_opens delta %d after lost hedges, want 0", got)
	}
	for _, ws := range tc.rt.workers {
		if !ws.br.Allow() {
			t.Errorf("worker %s breaker open after losing a hedge", ws.Name)
		}
	}
}

// TestRouterFailoverAndBreaker: a failing primary triggers immediate
// failover (no hedge wait), and once its breaker opens the next
// request skips it entirely.
func TestRouterFailoverAndBreaker(t *testing.T) {
	var mu sync.Mutex
	hits := map[string]int{}
	var failing atomic.Value // worker name that 500s every scatter
	failing.Store("")
	flaky := func(idx int) http.HandlerFunc {
		name := fmt.Sprintf("worker-%d", idx)
		ok := scatterRespond(nil)
		return func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hits[name]++
			mu.Unlock()
			if failing.Load().(string) == name {
				http.Error(w, `{"code":"internal"}`, http.StatusInternalServerError)
				return
			}
			ok(w, r)
		}
	}
	tc := startCluster(t, Config{
		Replication:      2,
		HedgeDelay:       10 * time.Second, // hedging out of the picture: failover must not wait for it
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	}, []http.HandlerFunc{flaky(0), flaky(1)})
	// Break whichever worker is primary for shard 0, so at least one
	// shard is guaranteed to exercise the failover path.
	prim := tc.workers[tc.cmap.ReplicasFor(0)[0]].Name

	failing.Store(prim)
	start := time.Now()
	if rec := postMap(t, tc, nil); rec.Code != http.StatusOK {
		t.Fatalf("request 1: HTTP %d: %s", rec.Code, rec.Body)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("failover waited %v — it must not sit out the hedge delay", d)
	}
	mu.Lock()
	afterFirst := hits[prim]
	mu.Unlock()
	if afterFirst == 0 {
		t.Fatalf("%s is shard 0's primary but was never tried", prim)
	}
	// Threshold 1: that first failure opened the breaker; the next
	// request must not touch the broken worker at all.
	if rec := postMap(t, tc, nil); rec.Code != http.StatusOK {
		t.Fatalf("request 2: HTTP %d: %s", rec.Code, rec.Body)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits[prim] != afterFirst {
		t.Errorf("%s hit %d more times after its breaker opened", prim, hits[prim]-afterFirst)
	}
}

// TestRouterExactlyOneMergeUnderRace: with a near-zero hedge delay
// both replicas race to answer with identical candidates. If the
// router ever merged both, shard.MergeReadScatters' duplicate guard
// would fail the request — so N racing requests all succeeding proves
// exactly-one-merge.
func TestRouterExactlyOneMergeUnderRace(t *testing.T) {
	// Replicas of the same shard answer identically (that is what makes
	// them replicas), but different shards must answer disjointly — real
	// shard cores partition the reference — so the candidate's RefPos is
	// derived from the requested shard.
	perShard := func(w http.ResponseWriter, r *http.Request) {
		var req server.ScatterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]shard.ReadScatter, len(req.Reads))
		for i := range results {
			results[i] = shard.ReadScatter{Read: i}
		}
		results[0].Strand[0] = []shard.CandExt{{QueryPos: 3, RefPos: 7 + 40*req.Shards[0]}}
		json.NewEncoder(w).Encode(server.ScatterResponse{Results: results})
	}
	tc := startCluster(t, Config{Replication: 2, HedgeDelay: time.Nanosecond}, []http.HandlerFunc{
		perShard, perShard,
	})
	for i := 0; i < 25; i++ {
		rec := postMap(t, tc, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("iteration %d: HTTP %d: %s — a double merge?", i, rec.Code, rec.Body)
		}
	}
}

// TestRouterProbeRejectsMismatch: a worker whose advertised ownership
// disagrees with the shared map must fail the boot probe.
func TestRouterProbeRejectsMismatch(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.ShardsResponse{
			Worker: "worker-0", Owned: []int{0, 1}, // claims everything
			Geometry: testGeo, Ref: testRefMeta, MaxCandidates: testMaxCands,
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	other := httptest.NewServer(mux) // wrong identity too
	defer other.Close()
	rt, err := New(Config{Workers: []Worker{
		{Name: "worker-0", URL: srv.URL},
		{Name: "worker-1", URL: other.URL},
	}, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Probe(t.Context()); err == nil {
		t.Fatal("probe accepted a worker whose ownership disagrees with the map")
	}
	if rt.Ready() {
		t.Fatal("router ready after a failed probe")
	}
}
