package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestParseWorkers(t *testing.T) {
	ws, err := ParseWorkers("w0=127.0.0.1:8851, w1=http://10.0.0.2:8852/,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Worker{
		{Name: "w0", URL: "http://127.0.0.1:8851"},
		{Name: "w1", URL: "http://10.0.0.2:8852"},
	}
	if !reflect.DeepEqual(ws, want) {
		t.Fatalf("got %+v, want %+v", ws, want)
	}
	for _, bad := range []string{"", "w0", "=url", "w0=", ",,"} {
		if _, err := ParseWorkers(bad); err == nil {
			t.Errorf("ParseWorkers(%q): want error", bad)
		}
	}
}

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(nil, 2); err == nil {
		t.Error("empty roster: want error")
	}
	dup := []Worker{{Name: "w0"}, {Name: "w0"}}
	if _, err := NewMap(dup, 1); err == nil {
		t.Error("duplicate names: want error")
	}
	// Replication clamps to the roster size on both ends.
	m, err := NewMap([]Worker{{Name: "a"}, {Name: "b"}}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if m.Replication != 2 {
		t.Errorf("replication clamp high: got %d, want 2", m.Replication)
	}
	m, _ = NewMap([]Worker{{Name: "a"}}, 0)
	if m.Replication != 1 {
		t.Errorf("replication clamp low: got %d, want 1", m.Replication)
	}
}

func roster(n int) []Worker {
	var ws []Worker
	for i := 0; i < n; i++ {
		ws = append(ws, Worker{Name: fmt.Sprintf("worker-%d", i), URL: fmt.Sprintf("http://w%d", i)})
	}
	return ws
}

// TestReplicasForDeterminism: a replica set is stable across calls,
// holds exactly Replication distinct workers, and the primary is the
// first entry.
func TestReplicasForDeterminism(t *testing.T) {
	m, err := NewMap(roster(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 64
	for s := 0; s < shards; s++ {
		first := m.ReplicasFor(s)
		if len(first) != 3 {
			t.Fatalf("shard %d: %d replicas, want 3", s, len(first))
		}
		seen := make(map[int]bool)
		for _, wi := range first {
			if wi < 0 || wi >= 5 {
				t.Fatalf("shard %d: replica index %d out of range", s, wi)
			}
			if seen[wi] {
				t.Fatalf("shard %d: duplicate replica %d", s, wi)
			}
			seen[wi] = true
		}
		for trial := 0; trial < 3; trial++ {
			if got := m.ReplicasFor(s); !reflect.DeepEqual(got, first) {
				t.Fatalf("shard %d: replica set changed across calls: %v then %v", s, first, got)
			}
		}
	}
}

// names resolves replica indices to worker names, which survive
// roster reordering (indices do not).
func names(m *Map, replicas []int) []string {
	var out []string
	for _, wi := range replicas {
		out = append(out, m.Workers[wi].Name)
	}
	return out
}

// TestRendezvousStabilityOnRemove: removing a worker only reassigns
// shards that worker replicated; every other shard keeps its exact
// replica list — the minimal-disruption property that makes a static
// map workable (a roster edit does not re-shuffle the cluster).
func TestRendezvousStabilityOnRemove(t *testing.T) {
	const shards = 128
	full, err := NewMap(roster(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	const removed = "worker-2"
	var shrunk []Worker
	for _, w := range full.Workers {
		if w.Name != removed {
			shrunk = append(shrunk, w)
		}
	}
	small, err := NewMap(shrunk, 2)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for s := 0; s < shards; s++ {
		before := names(full, full.ReplicasFor(s))
		after := names(small, small.ReplicasFor(s))
		hadRemoved := false
		for _, n := range before {
			if n == removed {
				hadRemoved = true
			}
		}
		if hadRemoved {
			moved++
			continue
		}
		if !reflect.DeepEqual(before, after) {
			t.Errorf("shard %d: replica set moved without cause: %v -> %v", s, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: removed worker replicated no shards")
	}
}

// TestRendezvousStabilityOnAdd is the converse: a new worker only
// claims shards it now scores into the top N; all others are untouched.
func TestRendezvousStabilityOnAdd(t *testing.T) {
	const shards = 128
	base, err := NewMap(roster(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	added := Worker{Name: "worker-new", URL: "http://new"}
	grown, err := NewMap(append(roster(4), added), 2)
	if err != nil {
		t.Fatal(err)
	}
	claimed := 0
	for s := 0; s < shards; s++ {
		before := names(base, base.ReplicasFor(s))
		after := names(grown, grown.ReplicasFor(s))
		hasNew := false
		for _, n := range after {
			if n == added.Name {
				hasNew = true
			}
		}
		if hasNew {
			claimed++
			continue
		}
		if !reflect.DeepEqual(before, after) {
			t.Errorf("shard %d: replica set moved without cause: %v -> %v", s, before, after)
		}
	}
	if claimed == 0 {
		t.Fatal("test vacuous: added worker claimed no shards")
	}
}

// TestOwnedByMatchesReplicas: the worker-side ownership derivation is
// exactly the router-side replica assignment — the property the boot
// probe enforces over the wire.
func TestOwnedByMatchesReplicas(t *testing.T) {
	const shards = 64
	m, err := NewMap(roster(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	owners := make(map[int]int)
	for _, w := range m.Workers {
		owned, err := m.OwnedBy(w.Name, shards)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(owned); i++ {
			if owned[i] <= owned[i-1] {
				t.Fatalf("OwnedBy(%q) not strictly sorted: %v", w.Name, owned)
			}
		}
		for _, s := range owned {
			owners[s]++
			found := false
			for _, wi := range m.ReplicasFor(s) {
				if m.Workers[wi].Name == w.Name {
					found = true
				}
			}
			if !found {
				t.Fatalf("worker %q claims shard %d but is not in its replica set", w.Name, s)
			}
		}
	}
	for s := 0; s < shards; s++ {
		if owners[s] != 2 {
			t.Errorf("shard %d owned by %d workers, want 2", s, owners[s])
		}
	}
	if _, err := m.OwnedBy("stranger", shards); err == nil {
		t.Error("OwnedBy(unknown worker): want error")
	}
}
