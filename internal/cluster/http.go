package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"darwin/internal/core"
	"darwin/internal/faults"
	"darwin/internal/obs"
	"darwin/internal/sam"
	"darwin/internal/server"
)

var hRequestLatency = obs.Default.Histogram("cluster/request_latency_ms", 0, 10000, 100)

// statusWriter mirrors the worker-side wrapper: record what the
// handler told the client so the access line can report it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Handler returns the router's HTTP surface behind its observability
// middleware. The middleware applies darwind's exact ingress identity
// rule (server.RequestIDFrom), so the ID a client sends — or the one
// minted here — is the ID every worker hop logs.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := server.RequestIDFrom(r)
		span := obs.NewRequestSpan(reqID, r.Method+" "+r.URL.Path)
		ctx := obs.ContextWithSpan(r.Context(), span)
		w.Header().Set("X-Request-ID", reqID)
		sw := &statusWriter{ResponseWriter: w}
		rt.mux.ServeHTTP(sw, r.WithContext(ctx))
		span.End()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if r.URL.Path == "/v1/map" {
			hRequestLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		}
		rt.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond),
			"request_id", reqID)
	})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case rt.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !rt.ready.Load():
		http.Error(w, "cluster probe pending", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// handleTopology serves the resolved cluster view: the shard→replica
// assignment, per-worker breaker state, and rolling latency — the
// operator's answer to "where would shard 3 go right now?".
func (rt *Router) handleTopology(w http.ResponseWriter, _ *http.Request) {
	type workerView struct {
		Name      string  `json:"name"`
		URL       string  `json:"url"`
		Breaker   string  `json:"breaker"`
		P50MS     float64 `json:"p50_ms"`
		P95MS     float64 `json:"p95_ms"`
		HedgeMS   float64 `json:"hedge_delay_ms"`
		OwnedHere []int   `json:"owned_shards"`
	}
	type view struct {
		Shards      int          `json:"shards"`
		Replication int          `json:"replication"`
		Fingerprint string       `json:"fingerprint,omitempty"`
		Replicas    [][]string   `json:"replicas"`
		Workers     []workerView `json:"workers"`
	}
	v := view{Shards: rt.shardCount, Replication: rt.cmap.Replication, Fingerprint: rt.fingerprint}
	owned := make([][]int, len(rt.workers))
	for s := 0; s < rt.shardCount; s++ {
		var names []string
		for _, wi := range rt.cmap.ReplicasFor(s) {
			names = append(names, rt.workers[wi].Name)
			owned[wi] = append(owned[wi], s)
		}
		v.Replicas = append(v.Replicas, names)
	}
	for wi, ws := range rt.workers {
		st := ws.lat.Window(time.Minute)
		v.Workers = append(v.Workers, workerView{
			Name:      ws.Name,
			URL:       ws.URL,
			Breaker:   ws.br.State(),
			P50MS:     st.P50,
			P95MS:     st.P95,
			HedgeMS:   float64(rt.hedgeDelay(ws)) / float64(time.Millisecond),
			OwnedHere: owned[wi],
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (rt *Router) handleMap(w http.ResponseWriter, r *http.Request) {
	cRequests.Inc()
	rctx := r.Context()
	span := obs.SpanFromContext(rctx)
	reqID := obs.RequestIDFromContext(rctx)
	traceparent := r.Header.Get("traceparent")

	if r.Method != http.MethodPost {
		cRequestsFailed.Inc()
		server.WriteError(rctx, w, http.StatusMethodNotAllowed, server.CodeMethodNotAllow, "POST required")
		return
	}
	if rt.draining.Load() {
		cRequestsFailed.Inc()
		w.Header().Set("Retry-After", "5")
		server.WriteError(rctx, w, http.StatusServiceUnavailable, server.CodeDraining, "draining")
		return
	}
	if !rt.ready.Load() {
		cRequestsFailed.Inc()
		w.Header().Set("Retry-After", "1")
		server.WriteError(rctx, w, http.StatusServiceUnavailable, server.CodeWarming, "cluster probe pending")
		return
	}
	var req server.MapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		cRequestsFailed.Inc()
		server.WriteError(rctx, w, http.StatusBadRequest, server.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if req.Reference != "" {
		cRequestsFailed.Inc()
		server.WriteError(rctx, w, http.StatusForbidden, server.CodeRefLoadDisabled,
			"the cluster serves one pinned reference; per-request references are not routable")
		return
	}
	if len(req.Reads) == 0 {
		cRequestsFailed.Inc()
		server.WriteError(rctx, w, http.StatusBadRequest, server.CodeBadRequest, "no reads")
		return
	}
	if len(req.Reads) > rt.cfg.MaxReadsPerRequest {
		cRequestsFailed.Inc()
		server.WriteError(rctx, w, http.StatusRequestEntityTooLarge, server.CodeTooManyReads,
			"%d reads exceeds per-request limit %d", len(req.Reads), rt.cfg.MaxReadsPerRequest)
		return
	}
	for i, rd := range req.Reads {
		if len(rd.Seq) == 0 {
			cRequestsFailed.Inc()
			server.WriteError(rctx, w, http.StatusBadRequest, server.CodeBadRequest, "read %d (%q) has an empty sequence", i, rd.Name)
			return
		}
	}
	span.SetAttr("reads", int64(len(req.Reads)))
	span.SetAttr("shards", int64(rt.shardCount))

	timeout := rt.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(rctx, timeout)
	defer cancel()

	// Workers get the remaining budget in their own timeout_ms so a
	// sub-request shed by the router's deadline is also shed worker-side.
	subTimeoutMS := int(timeout / time.Millisecond)
	byShard, err := rt.scatterAll(ctx, span, req.Reads, subTimeoutMS, reqID, traceparent)
	if err != nil {
		cRequestsFailed.Inc()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			server.WriteError(rctx, w, http.StatusGatewayTimeout, server.CodeDeadline, "request deadline exceeded")
		case faults.IsInjected(err):
			server.WriteError(rctx, w, http.StatusServiceUnavailable, server.CodeFaultInjected, "%v", err)
		default:
			server.WriteError(rctx, w, http.StatusBadGateway, server.CodeScatterFailed, "%v", err)
		}
		return
	}
	results, err := rt.mergeAll(byShard, len(req.Reads))
	if err != nil {
		cRequestsFailed.Inc()
		server.WriteError(rctx, w, http.StatusInternalServerError, server.CodeInternal, "merge: %v", err)
		return
	}
	cRequestsOK.Inc()
	if r.URL.Query().Get("format") == "sam" {
		rt.writeSAM(w, req, results)
		return
	}
	rt.writeNDJSON(w, reqID, req, results)
}

// writeNDJSON mirrors the worker's NDJSON emission line for line, so a
// client cannot tell a router from a single darwind.
func (rt *Router) writeNDJSON(w http.ResponseWriter, reqID string, req server.MapRequest, results []core.MapResult) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i, rd := range req.Reads {
		var line server.MapResponseLine
		switch {
		case results[i].Err != nil:
			line = server.MapResponseLine{Read: rd.Name, Error: results[i].Err.Error()}
		default:
			recs := server.RecordsFor(rt.ref, rd.Name, rd.Seq, results[i].Alignments, req.All)
			mapped := false
			for _, rec := range recs {
				if rec.Flag&sam.FlagUnmapped == 0 {
					mapped = true
					break
				}
			}
			line = server.MapResponseLine{Read: rd.Name, Mapped: mapped, Records: recs}
		}
		line.RequestID = reqID
		if err := enc.Encode(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// writeSAM streams the merged batch as SAM with the same header the
// workers would emit — program name included — because byte identity
// with monolithic darwind is the cluster's correctness contract.
func (rt *Router) writeSAM(w http.ResponseWriter, req server.MapRequest, results []core.MapResult) {
	w.Header().Set("Content-Type", "text/x-sam; charset=utf-8")
	for _, line := range sam.HeaderLines(rt.sq, "darwind") {
		fmt.Fprintln(w, line)
	}
	flusher, _ := w.(http.Flusher)
	for i, rd := range req.Reads {
		alns := results[i].Alignments
		if results[i].Err != nil {
			alns = nil
		}
		for _, rec := range server.RecordsFor(rt.ref, rd.Name, rd.Seq, alns, req.All) {
			fmt.Fprintln(w, rec.Line())
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
