package varcall

import (
	"testing"

	"darwin/internal/core"
	"darwin/internal/dna"
	"darwin/internal/genome"
	"darwin/internal/readsim"
)

// TestCallSNPs: plant known SNPs, sequence the sample at 15×, call
// against the reference, and check recall/precision.
func TestCallSNPs(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 60000, GC: 0.45, Seed: 181})
	if err != nil {
		t.Fatal(err)
	}
	sample, truth, err := genome.ApplyVariants(g.Seq, genome.VariantConfig{SNPRate: 0.002, Seed: 182})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(sample, readsim.Config{
		Profile: readsim.PacBio, MeanLen: 3000, Coverage: 15, Seed: 183,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	calls, err := Call(g.Seq, seqs, DefaultConfig(core.DefaultConfig(11, 600, 20)))
	if err != nil {
		t.Fatal(err)
	}

	truthSNP := map[int]bool{}
	for _, v := range truth {
		if v.Kind == "snp" {
			truthSNP[v.RefPos] = true
		}
	}
	if len(truthSNP) < 50 {
		t.Fatalf("test setup: only %d true SNPs", len(truthSNP))
	}
	tp, fp := 0, 0
	for _, c := range calls {
		if c.Kind != SNP {
			continue
		}
		if truthSNP[c.Pos] {
			tp++
		} else {
			fp++
		}
		if c.Support > c.Depth {
			t.Fatalf("support %d > depth %d", c.Support, c.Depth)
		}
	}
	recall := float64(tp) / float64(len(truthSNP))
	precision := 1.0
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	t.Logf("SNP recall %.2f (%d/%d), precision %.2f (%d FP)", recall, tp, len(truthSNP), precision, fp)
	if recall < 0.85 {
		t.Errorf("SNP recall %.2f, want ≥ 0.85", recall)
	}
	if precision < 0.85 {
		t.Errorf("SNP precision %.2f, want ≥ 0.85", precision)
	}
}

// TestCallIndels: small planted indels must be recovered within a few
// bases of their true position (alignment placement is ambiguous in
// homopolymers).
func TestCallIndels(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 40000, GC: 0.45, Seed: 184})
	if err != nil {
		t.Fatal(err)
	}
	sample, truth, err := genome.ApplyVariants(g.Seq, genome.VariantConfig{SmallIndelRate: 0.0008, Seed: 185})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(sample, readsim.Config{
		Profile: readsim.PacBio, MeanLen: 3000, Coverage: 15, Seed: 186,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	calls, err := Call(g.Seq, seqs, DefaultConfig(core.DefaultConfig(11, 600, 20)))
	if err != nil {
		t.Fatal(err)
	}
	var indelTruth []genome.Variant
	for _, v := range truth {
		if v.Kind == "ins" || v.Kind == "del" {
			indelTruth = append(indelTruth, v)
		}
	}
	if len(indelTruth) < 10 {
		t.Fatalf("test setup: only %d true indels", len(indelTruth))
	}
	recovered := 0
	for _, v := range indelTruth {
		for _, c := range calls {
			if c.Kind == SNP {
				continue
			}
			if c.Pos >= v.RefPos-5 && c.Pos <= v.RefPos+v.Len+5 {
				recovered++
				break
			}
		}
	}
	recall := float64(recovered) / float64(len(indelTruth))
	t.Logf("indel recall %.2f (%d/%d), %d total calls", recall, recovered, len(indelTruth), len(calls))
	if recall < 0.7 {
		t.Errorf("indel recall %.2f, want ≥ 0.7", recall)
	}
}

// TestNoVariantsNoCalls: sequencing the reference itself must produce
// (almost) no calls — read errors scatter below the majority
// threshold.
func TestNoVariantsNoCalls(t *testing.T) {
	g, err := genome.Generate(genome.Config{Length: 30000, GC: 0.45, Seed: 187})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(g.Seq, readsim.Config{
		Profile: readsim.PacBio, MeanLen: 3000, Coverage: 15, Seed: 188,
	})
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]dna.Seq, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}
	calls, err := Call(g.Seq, seqs, DefaultConfig(core.DefaultConfig(11, 600, 20)))
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) > 5 {
		t.Errorf("%d calls on variant-free sample, want ≤ 5", len(calls))
	}
}

func TestCallErrors(t *testing.T) {
	if _, err := Call(nil, nil, DefaultConfig(core.DefaultConfig(11, 100, 10))); err == nil {
		t.Error("empty reference should error")
	}
	cfg := DefaultConfig(core.DefaultConfig(11, 100, 10))
	cfg.MinFrac = 0
	if _, err := Call(dna.NewSeq("ACGTACGTACGTACGT"), nil, cfg); err == nil {
		t.Error("MinFrac 0 should error")
	}
}
