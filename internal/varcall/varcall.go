// Package varcall implements pileup-based variant calling on top of
// Darwin's reference-guided alignments — the application the paper's
// introduction motivates (detecting "when genomic mutations
// predispose humans to certain diseases"; reference-guided assembly
// "is good at finding small changes, or variants, in the sequenced
// genome", Section 2).
//
// Reads are mapped with the Darwin engine, aligned columns are piled
// up against the reference, and positions where a majority of
// covering reads disagree with the reference are emitted as SNP,
// insertion, or deletion calls.
package varcall

import (
	"context"
	"fmt"
	"sort"

	"darwin/internal/align"
	"darwin/internal/core"
	"darwin/internal/dna"
)

// Kind classifies a variant call.
type Kind string

// Variant kinds.
const (
	SNP Kind = "snp"
	Ins Kind = "ins"
	Del Kind = "del"
)

// Variant is one call against the reference.
type Variant struct {
	// Pos is the 0-based reference position (for Ins, the base the
	// insertion follows).
	Pos int
	// Kind is the variant class.
	Kind Kind
	// Ref is the reference base(s) affected ("" for insertions).
	Ref string
	// Alt is the alternative allele ("" for deletions).
	Alt string
	// Depth is the number of reads covering the position.
	Depth int
	// Support is the number of reads supporting the call.
	Support int
}

// Config parameterizes calling.
type Config struct {
	// Core configures the mapper.
	Core core.Config
	// MinDepth is the minimum coverage to consider a position.
	MinDepth int
	// MinFrac is the minimum supporting-read fraction.
	MinFrac float64
}

// DefaultConfig returns thresholds suitable for ~15× long-read
// coverage: with 15% read error a true homozygous variant is
// supported by ~85% of covering reads where the alignment is clean,
// but support dips near indel clusters, so the threshold sits at half
// coverage — far above the per-base error noise (≤ ~9% per allele).
func DefaultConfig(coreCfg core.Config) Config {
	return Config{Core: coreCfg, MinDepth: 5, MinFrac: 0.5}
}

// Call maps the reads and returns variant calls sorted by position.
//
// Deprecated: use CallContext, which this wraps with
// context.Background(). Results are identical.
func Call(ref dna.Seq, reads []dna.Seq, cfg Config) ([]Variant, error) {
	return CallContext(context.Background(), ref, reads, cfg)
}

// CallContext maps the reads and returns variant calls sorted by
// position. Cancellation is honoured between reads.
func CallContext(ctx context.Context, ref dna.Seq, reads []dna.Seq, cfg Config) ([]Variant, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("varcall: empty reference")
	}
	if cfg.MinDepth < 1 {
		cfg.MinDepth = 1
	}
	if cfg.MinFrac <= 0 || cfg.MinFrac > 1 {
		return nil, fmt.Errorf("varcall: MinFrac %v out of (0,1]", cfg.MinFrac)
	}
	engine, err := core.New(ref, cfg.Core)
	if err != nil {
		return nil, err
	}

	type column struct {
		base [4]int32
		del  int32
		ins  map[string]int32
		cov  int32
	}
	cols := make([]column, len(ref))
	for _, read := range reads {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		alns, _ := engine.MapRead(read)
		best := core.Best(alns)
		if best == nil {
			continue
		}
		q := read
		if best.Reverse {
			q = dna.RevComp(read)
		}
		i, j := best.Result.RefStart, best.Result.QueryStart
		for _, s := range best.Result.Cigar {
			switch s.Op {
			case align.OpMatch:
				for x := 0; x < s.Len; x++ {
					c := &cols[i+x]
					c.cov++
					if code := dna.Code(q[j+x]); code < 4 {
						c.base[code]++
					}
				}
				i += s.Len
				j += s.Len
			case align.OpDel:
				for x := 0; x < s.Len; x++ {
					c := &cols[i+x]
					c.cov++
					c.del++
				}
				i += s.Len
			case align.OpIns:
				if i > 0 {
					c := &cols[i-1]
					if c.ins == nil {
						c.ins = make(map[string]int32)
					}
					c.ins[string(q[j:j+s.Len])]++
				}
				j += s.Len
			}
		}
	}

	var out []Variant
	for pos := range cols {
		c := &cols[pos]
		if int(c.cov) < cfg.MinDepth {
			continue
		}
		refCode := dna.Code(ref[pos])
		// SNP: the top non-reference base with majority support.
		bestBase, bestVotes := byte(0), int32(0)
		for code, v := range c.base {
			if byte(code) != refCode && v > bestVotes {
				bestVotes = v
				bestBase = byte(code)
			}
		}
		if float64(bestVotes) >= cfg.MinFrac*float64(c.cov) {
			out = append(out, Variant{
				Pos: pos, Kind: SNP,
				Ref: string(ref[pos : pos+1]), Alt: string(dna.Base(bestBase)),
				Depth: int(c.cov), Support: int(bestVotes),
			})
		}
		// Deletion of this base.
		if float64(c.del) >= cfg.MinFrac*float64(c.cov) {
			out = append(out, Variant{
				Pos: pos, Kind: Del,
				Ref:   string(ref[pos : pos+1]),
				Depth: int(c.cov), Support: int(c.del),
			})
		}
		// Insertion after this base: most common inserted sequence.
		if len(c.ins) > 0 {
			var total int32
			bestSeq, bestN := "", int32(0)
			for s, n := range c.ins {
				total += n
				if n > bestN || (n == bestN && s < bestSeq) {
					bestSeq, bestN = s, n
				}
			}
			if float64(total) >= cfg.MinFrac*float64(c.cov) {
				out = append(out, Variant{
					Pos: pos, Kind: Ins, Alt: bestSeq,
					Depth: int(c.cov), Support: int(total),
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Pos != out[b].Pos {
			return out[a].Pos < out[b].Pos
		}
		return out[a].Kind < out[b].Kind
	})
	return out, nil
}
