package dram

import (
	"math/rand"
	"testing"

	"darwin/internal/hw"
)

func TestPeakBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.PeakGBps(); got < 9.5 || got > 9.7 {
		t.Errorf("peak = %.2f GB/s, want 9.6 (LPDDR4-2400 ×32)", got)
	}
}

// TestSequentialStreamEfficiency: long sequential reads must achieve a
// large fraction of peak (row hits dominate, bank interleaving hides
// activations).
func TestSequentialStreamEfficiency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLP = 8 // a streaming prefetcher keeps several bursts in flight
	res, err := Simulate(cfg, StreamTrace(0, 8<<20, 1024))
	if err != nil {
		t.Fatal(err)
	}
	eff := res.EffectiveGBps(cfg) / cfg.PeakGBps()
	if eff < 0.85 {
		t.Errorf("sequential efficiency = %.2f, want ≥ 0.85", eff)
	}
	if res.HitRate() < 0.9 {
		t.Errorf("row hit rate = %.2f, want ≥ 0.9", res.HitRate())
	}
}

// TestRandomAccessLatencyBound: small random reads are latency-bound;
// effective bandwidth collapses and the per-access cost approaches
// tRP+tRCD+tCAS.
func TestRandomAccessLatencyBound(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	res, err := Simulate(cfg, RandomTrace(rng, n, 8, 4<<30))
	if err != nil {
		t.Fatal(err)
	}
	eff := res.EffectiveGBps(cfg) / cfg.PeakGBps()
	if eff > 0.1 {
		t.Errorf("random 8B efficiency = %.2f, want ≤ 0.1", eff)
	}
	// ~11% of 8 B reads straddle a 64 B burst boundary; the second
	// burst of those is a same-row hit. True cross-request hits are
	// negligible.
	if res.HitRate() > 0.15 {
		t.Errorf("random hit rate = %.2f, want ≤ 0.15", res.HitRate())
	}
	nsPerAccess := float64(res.Cycles) / cfg.ClockHz * 1e9 / n
	// With 8 banks overlapping, the amortized cost is below one full
	// tRC but must remain well above a burst slot.
	if nsPerAccess < 5 || nsPerAccess > 80 {
		t.Errorf("random access cost = %.1f ns, want 5-80 ns", nsPerAccess)
	}
}

// TestSeedLookupMatchesAnalyticalModel closes the Ramulator loop: the
// simulated per-seed D-SOFT cost must track hw.DSOFTModel's analytical
// throughput (which was calibrated to the paper's Table 3) within a
// factor of two across the hits/seed range.
func TestSeedLookupMatchesAnalyticalModel(t *testing.T) {
	cfg := DefaultConfig()
	model := hw.NewDSOFTModel(hw.DefaultChip())
	rng := rand.New(rand.NewSource(2))
	for _, hits := range []float64{8.7, 33.4, 127.3, 491.6} {
		const seeds = 3000
		res, err := Simulate(cfg, SeedLookupTrace(rng, seeds, hits))
		if err != nil {
			t.Fatal(err)
		}
		// Simulated seeds/s for the whole memory system: 4 channels,
		// scaled by the share not reserved for GACT.
		perChannel := cfg.ClockHz / (float64(res.Cycles) / seeds)
		simSeedsPerSec := perChannel * 4 * (1 - model.DRAM.GACTReserve)
		want := model.SeedsPerSecond(hits)
		ratio := simSeedsPerSec / want
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("hits/seed=%.1f: simulated %.3g seeds/s vs model %.3g (ratio %.2f)",
				hits, simSeedsPerSec, want, ratio)
		}
	}
}

// TestGACTTrafficShare: at the paper's peak tile rate, simulated GACT
// traffic must occupy roughly the 44.4% of memory cycles Section 9
// reports.
func TestGACTTrafficShare(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLP = 16 // 16 GACT arrays share each channel (Section 8)
	rng := rand.New(rand.NewSource(3))
	const tiles = 5000
	res, err := Simulate(cfg, GACTTileTrace(rng, tiles, 320))
	if err != nil {
		t.Fatal(err)
	}
	// Cycles consumed per tile on one channel; 20.8M tiles/s spread
	// over 4 channels ⇒ 5.2M tiles/s each.
	cyclesPerTile := float64(res.Cycles) / tiles
	share := cyclesPerTile * 5.2e6 / cfg.ClockHz
	if share < 0.25 || share > 0.65 {
		t.Errorf("GACT memory share = %.2f, want ≈ 0.44 (paper: 44.4%%)", share)
	}
}

// TestRowPolicy: two bursts to the same row cost one activation; to
// different rows in one bank, two.
func TestRowPolicy(t *testing.T) {
	cfg := DefaultConfig()
	same, err := Simulate(cfg, []Request{{Addr: 0, Bytes: 64}, {Addr: 64, Bytes: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if same.RowHits != 1 || same.RowMisses != 1 {
		t.Errorf("same-row: hits=%d misses=%d, want 1/1", same.RowHits, same.RowMisses)
	}
	rowStride := int64(cfg.RowBytes * cfg.Banks) // same bank, next row
	diff, err := Simulate(cfg, []Request{{Addr: 0, Bytes: 64}, {Addr: rowStride, Bytes: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if diff.RowMisses != 2 {
		t.Errorf("conflict: misses=%d, want 2", diff.RowMisses)
	}
	if diff.Cycles <= same.Cycles {
		t.Errorf("row conflict (%d cycles) not slower than row hit (%d)", diff.Cycles, same.Cycles)
	}
}

func TestRequestSplitting(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Simulate(cfg, []Request{{Addr: 32, Bytes: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesMoved != 100 {
		t.Errorf("bytes moved = %d, want 100", res.BytesMoved)
	}
	if res.RowHits+res.RowMisses != 3 { // 32..64, 64..128, 128..132
		t.Errorf("bursts = %d, want 3", res.RowHits+res.RowMisses)
	}
}

func TestConfigErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.Banks = 0
	if _, err := Simulate(bad, nil); err == nil {
		t.Error("zero banks should error")
	}
}
