package dram

import "math/rand"

// Trace builders for the three access patterns the paper's memory
// methodology evaluates (Section 8): D-SOFT seed lookups, GACT tile
// traffic, and raw streaming/random reference patterns.

// SeedLookupTrace models D-SOFT's per-seed DRAM behaviour: one random
// 8 B pointer-table read (two adjacent 4 B pointers) followed by a
// sequential hits×4 B position-table stream at a random offset. Table
// regions are placed as in Figure 5b (4 GB pointer table, 16 GB
// position table).
func SeedLookupTrace(rng *rand.Rand, seeds int, hitsPerSeed float64) []Request {
	const (
		ptrBase = int64(0)
		ptrSize = int64(4) << 30
		posBase = ptrSize
		posSize = int64(16) << 30
	)
	reqs := make([]Request, 0, seeds*2)
	for s := 0; s < seeds; s++ {
		reqs = append(reqs, Request{Addr: ptrBase + rng.Int63n(ptrSize-8), Bytes: 8})
		// Hit-list length varies; draw around the mean.
		hits := int(hitsPerSeed)
		if frac := hitsPerSeed - float64(hits); rng.Float64() < frac {
			hits++
		}
		if hits == 0 {
			continue
		}
		reqs = append(reqs, Request{Addr: posBase + rng.Int63n(posSize-int64(hits*4)), Bytes: hits * 4})
	}
	return reqs
}

// GACTTileTrace models the per-tile traffic of Section 9: two
// sequential T-byte reads (R_tile, Q_tile from the reference and
// query partitions) and one 64 B traceback write, at random positions.
func GACTTileTrace(rng *rand.Rand, tiles, tileT int) []Request {
	const (
		refBase = int64(20) << 30
		refSize = int64(4) << 30
		qBase   = int64(24) << 30
		qSize   = int64(6) << 30
		tbBase  = int64(30) << 30
		tbSize  = int64(2) << 30
	)
	reqs := make([]Request, 0, tiles*3)
	for t := 0; t < tiles; t++ {
		reqs = append(reqs,
			Request{Addr: refBase + rng.Int63n(refSize-int64(tileT)), Bytes: tileT},
			Request{Addr: qBase + rng.Int63n(qSize-int64(tileT)), Bytes: tileT},
			Request{Addr: tbBase + rng.Int63n(tbSize-64), Bytes: 64, Write: true},
		)
	}
	return reqs
}

// StreamTrace is a purely sequential read of the given size.
func StreamTrace(start int64, bytes, chunk int) []Request {
	var reqs []Request
	for off := 0; off < bytes; off += chunk {
		n := chunk
		if off+n > bytes {
			n = bytes - off
		}
		reqs = append(reqs, Request{Addr: start + int64(off), Bytes: n})
	}
	return reqs
}

// RandomTrace is uniformly random small reads over a region.
func RandomTrace(rng *rand.Rand, count, bytes int, region int64) []Request {
	reqs := make([]Request, count)
	for i := range reqs {
		reqs[i] = Request{Addr: rng.Int63n(region - int64(bytes)), Bytes: bytes}
	}
	return reqs
}
