// Package dram is an event-driven LPDDR4 channel simulator — the
// Ramulator stand-in of this reproduction (Section 8: "We generated a
// memory trace using a software run of D-SOFT and GACT and used
// Ramulator to estimate DRAM timing"). It models banks with open-row
// policy, row activate/precharge/CAS timing, burst transfers, and a
// simple in-order-per-bank scheduler: enough microarchitecture for
// the quantity the paper's methodology needs, namely the *effective
// bandwidth* of each access pattern (random pointer lookups,
// sequential position-table streams, GACT tile reads/writes).
//
// The analytical constants in package hw (sequential efficiency,
// per-seed random-access cost) are validated against this simulator's
// output (see the tests), closing the loop the paper closed with
// Ramulator.
package dram

import "fmt"

// Config holds the channel geometry and timing in memory-clock cycles.
// Defaults model LPDDR4-2400: 1200 MHz clock, data on both edges,
// 32-bit channel ⇒ 9.6 GB/s peak, 8 banks, 2 KB rows.
type Config struct {
	// ClockHz is the memory command clock (1200 MHz for LPDDR4-2400).
	ClockHz float64
	// BusBytesPerCycle is the data transferred per clock (DDR 32-bit:
	// 8 bytes/cycle).
	BusBytesPerCycle int
	// Banks per channel.
	Banks int
	// RowBytes is the row-buffer (page) size.
	RowBytes int
	// BurstBytes is the minimum transfer granularity (BL16 × 4 B).
	BurstBytes int
	// Timing in clock cycles.
	TRCD   int // activate → column command
	TRP    int // precharge
	TCAS   int // column command → first data
	TRAS   int // activate → precharge minimum
	TBurst int // data transfer occupancy per burst
	// MLP is the controller's outstanding-request window: up to this
	// many bursts overlap their activate/CAS latencies (bounded in
	// real parts by command-bus and queue capacity).
	MLP int
}

// DefaultConfig returns LPDDR4-2400 timing (approximate datasheet
// values at 1200 MHz: tRCD ≈ 15 ns, tRP ≈ 18 ns, tCAS ≈ 24 ns,
// tRAS ≈ 35 ns).
func DefaultConfig() Config {
	return Config{
		ClockHz:          1200e6,
		BusBytesPerCycle: 8,
		Banks:            8,
		RowBytes:         2048,
		BurstBytes:       64,
		TRCD:             18,
		TRP:              22,
		TCAS:             29,
		TRAS:             42,
		TBurst:           8, // 64 B / 8 B-per-cycle
		MLP:              4,
	}
}

// PeakGBps is the channel's raw bandwidth.
func (c Config) PeakGBps() float64 {
	return c.ClockHz * float64(c.BusBytesPerCycle) / 1e9
}

// Request is one memory access.
type Request struct {
	// Addr is the byte address.
	Addr int64
	// Bytes is the transfer size (split into bursts internally).
	Bytes int
	// Write marks stores (same timing as reads in this model, but
	// they occupy the bus).
	Write bool
}

// Result summarizes a simulated request stream.
type Result struct {
	// Cycles is the total memory-clock cycles from first command to
	// last data.
	Cycles int64
	// BytesMoved is the total data transferred.
	BytesMoved int64
	// RowHits and RowMisses count row-buffer outcomes per burst.
	RowHits, RowMisses int64
}

// EffectiveGBps is the achieved bandwidth.
func (r Result) EffectiveGBps(cfg Config) float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / cfg.ClockHz
	return float64(r.BytesMoved) / seconds / 1e9
}

// HitRate is the row-buffer hit fraction.
func (r Result) HitRate() float64 {
	total := r.RowHits + r.RowMisses
	if total == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(total)
}

// Channel simulates one LPDDR4 channel.
type Channel struct {
	cfg Config
	// Per-bank state.
	openRow  []int64 // -1 = closed
	bankFree []int64 // cycle at which the bank can accept a command
	busFree  int64   // cycle at which the data bus is free
	// inflight holds the completion cycles of the last MLP bursts; a
	// new burst may not issue before the oldest completes (queue
	// capacity).
	inflight []int64
	ifIdx    int
	res      Result
}

// NewChannel creates a channel with all rows closed.
func NewChannel(cfg Config) (*Channel, error) {
	if cfg.Banks <= 0 || cfg.RowBytes <= 0 || cfg.BurstBytes <= 0 || cfg.BusBytesPerCycle <= 0 {
		return nil, fmt.Errorf("dram: invalid geometry %+v", cfg)
	}
	if cfg.MLP <= 0 {
		cfg.MLP = 1
	}
	ch := &Channel{
		cfg:      cfg,
		openRow:  make([]int64, cfg.Banks),
		bankFree: make([]int64, cfg.Banks),
		inflight: make([]int64, cfg.MLP),
	}
	for i := range ch.openRow {
		ch.openRow[i] = -1
	}
	return ch, nil
}

// rowOf maps an address to (bank, row): rows are interleaved across
// banks at row granularity, so sequential streams hop banks and hide
// activation latency — the standard controller mapping.
func (ch *Channel) rowOf(addr int64) (bank int, row int64) {
	rowIdx := addr / int64(ch.cfg.RowBytes)
	return int(rowIdx % int64(ch.cfg.Banks)), rowIdx
}

// Access issues one request and advances the simulation.
func (ch *Channel) Access(req Request) {
	bytes := req.Bytes
	if bytes <= 0 {
		bytes = ch.cfg.BurstBytes
	}
	addr := req.Addr
	for bytes > 0 {
		burst := ch.cfg.BurstBytes - int(addr)%ch.cfg.BurstBytes
		if burst > bytes {
			burst = bytes
		}
		ch.burst(addr)
		addr += int64(burst)
		bytes -= burst
		ch.res.BytesMoved += int64(burst)
	}
}

// burst performs one ≤BurstBytes transfer.
func (ch *Channel) burst(addr int64) {
	cfg := ch.cfg
	bank, row := ch.rowOf(addr)
	// Issue when the bank is ready and a queue slot is free (the
	// oldest of the last MLP bursts has completed).
	start := maxI64(ch.inflight[ch.ifIdx], ch.bankFree[bank])
	if ch.openRow[bank] == row {
		ch.res.RowHits++
	} else {
		ch.res.RowMisses++
		if ch.openRow[bank] != -1 {
			start += int64(cfg.TRP) // precharge the old row
		}
		start += int64(cfg.TRCD) // activate the new row
		ch.openRow[bank] = row
	}
	// Column access: data appears TCAS later and occupies the bus for
	// TBurst.
	dataStart := maxI64(start+int64(cfg.TCAS), ch.busFree)
	done := dataStart + int64(cfg.TBurst)
	ch.busFree = done
	ch.bankFree[bank] = start + int64(cfg.TBurst)
	ch.inflight[ch.ifIdx] = done
	ch.ifIdx = (ch.ifIdx + 1) % len(ch.inflight)
	if done > ch.res.Cycles {
		ch.res.Cycles = done
	}
}

// Result returns the accumulated statistics.
func (ch *Channel) Result() Result { return ch.res }

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Simulate runs a request stream through a fresh channel.
func Simulate(cfg Config, reqs []Request) (Result, error) {
	ch, err := NewChannel(cfg)
	if err != nil {
		return Result{}, err
	}
	for _, r := range reqs {
		ch.Access(r)
	}
	return ch.Result(), nil
}
