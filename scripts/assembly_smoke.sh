#!/usr/bin/env bash
# assembly-smoke: end-to-end check of the assembly job API and its
# checkpoint/resume durability.
#   1. build darwind, darwin-client, genomesim, readsim, metricslint
#   2. submit an assemble job, SIGTERM darwind mid-overlap (after at
#      least one checkpoint landed), assert a clean drain that leaves
#      the persisted job non-terminal
#   3. restart darwind over the same -jobs-dir, assert the job is
#      recovered, resumes from its checkpoint (resumed + resume_read
#      visible in status), and completes with a non-trivial N50
#   4. stream the contig FASTA result
#   5. lint /metrics and assert the jobs/* families have samples
#   6. run a second job end-to-end through darwin-client -jobs-target
#      (submit → poll → fetch)
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "assembly-smoke: building binaries"
go build -o "$tmp/bin/" ./cmd/darwind ./cmd/darwin-client ./cmd/genomesim ./cmd/readsim ./cmd/metricslint

echo "assembly-smoke: generating synthetic genome and reads"
"$tmp/bin/genomesim" -len 20000 -seed 51 -out "$tmp/asm_genome.fa" 2>/dev/null
"$tmp/bin/readsim" -ref "$tmp/asm_genome.fa" -n 120 -len 1500 -seed 52 -out "$tmp/asm_reads.fq" 2>/dev/null
# The job payload goes up as FASTA.
awk 'NR%4==1{sub(/^@/,">");print} NR%4==2{print}' "$tmp/asm_reads.fq" > "$tmp/asm_reads.fa"
# darwind needs a mapping reference too; reuse the genome.
cp "$tmp/asm_genome.fa" "$tmp/ref.fa"

start_darwind() {
    local log=$1
    "$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
        -k 11 -n 400 -h 20 \
        -jobs-dir "$tmp/jobs" -jobs-checkpoint-every 4 2> "$log" &
    pid=$!
}

wait_ready() {
    local log=$1 a=""
    for _ in $(seq 1 300); do
        a=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$log" | head -1)
        if [ -n "$a" ] && curl -fsS "http://$a/readyz" >/dev/null 2>&1; then
            echo "$a"; return 0
        fi
        kill -0 "$pid" 2>/dev/null || { cat "$log" >&2; return 1; }
        sleep 0.1
    done
    cat "$log" >&2; return 1
}

start_darwind "$tmp/darwind1.log"
addr=$(wait_ready "$tmp/darwind1.log")
echo "assembly-smoke: darwind ready on $addr"

# Submit an assemble job (no polishing: the smoke exercises durability,
# not consensus quality).
submit=$(curl -fsS -X POST -H 'Content-Type: text/x-fasta' \
    --data-binary @"$tmp/asm_reads.fa" \
    "http://$addr/v1/jobs?kind=assemble&polish=0")
job=$(echo "$submit" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
if [ -z "$job" ]; then
    echo "assembly-smoke: FAIL — submit returned no job id: $submit" >&2
    exit 1
fi
echo "assembly-smoke: submitted job $job"

# Wait for a mid-overlap checkpoint, then pull the plug.
interrupted=""
for _ in $(seq 1 400); do
    st=$(curl -fsS "http://$addr/v1/jobs/$job")
    if echo "$st" | grep -Eq '"state":"(done|failed|canceled)"'; then
        echo "assembly-smoke: FAIL — job finished before SIGTERM could interrupt it: $st" >&2
        exit 1
    fi
    if echo "$st" | grep -Eq '"checkpoints":[1-9]'; then
        interrupted=1
        break
    fi
    sleep 0.05
done
if [ -z "$interrupted" ]; then
    echo "assembly-smoke: FAIL — no checkpoint observed while the job ran" >&2
    exit 1
fi

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "assembly-smoke: FAIL — darwind exited non-zero on SIGTERM:" >&2
    cat "$tmp/darwind1.log" >&2
    exit 1
fi
pid=""
if ! grep -q "drain complete" "$tmp/darwind1.log"; then
    echo "assembly-smoke: FAIL — no clean-drain log line:" >&2
    cat "$tmp/darwind1.log" >&2
    exit 1
fi
# The drain must leave the persisted job non-terminal so the next
# process resumes it.
if ! grep -Eq '"state": "(running|pending)"' "$tmp/jobs/$job/job.json"; then
    echo "assembly-smoke: FAIL — drained job persisted a terminal state:" >&2
    cat "$tmp/jobs/$job/job.json" >&2
    exit 1
fi
if [ ! -s "$tmp/jobs/$job/checkpoint.dwc" ]; then
    echo "assembly-smoke: FAIL — no checkpoint file survived the drain" >&2
    exit 1
fi
echo "assembly-smoke: SIGTERM mid-overlap left a resumable job + checkpoint"

# Restart: the job must be recovered and resumed from the checkpoint.
start_darwind "$tmp/darwind2.log"
addr=$(wait_ready "$tmp/darwind2.log")
if ! grep -q "jobs recovered from previous process" "$tmp/darwind2.log"; then
    echo "assembly-smoke: FAIL — restart did not recover the job:" >&2
    cat "$tmp/darwind2.log" >&2
    exit 1
fi

final=""
for _ in $(seq 1 1200); do
    st=$(curl -fsS "http://$addr/v1/jobs/$job")
    if echo "$st" | grep -q '"state":"done"'; then
        final=$st
        break
    fi
    if echo "$st" | grep -Eq '"state":"(failed|canceled)"'; then
        echo "assembly-smoke: FAIL — resumed job did not complete: $st" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$final" ]; then
    echo "assembly-smoke: FAIL — resumed job never finished" >&2
    curl -fsS "http://$addr/v1/jobs/$job" >&2 || true
    exit 1
fi
if ! echo "$final" | grep -q '"resumed":true'; then
    echo "assembly-smoke: FAIL — status does not mark the job resumed: $final" >&2
    exit 1
fi
if ! echo "$final" | grep -Eq '"resume_read":[1-9]'; then
    echo "assembly-smoke: FAIL — no resume read boundary in status: $final" >&2
    exit 1
fi
if ! echo "$final" | grep -Eq '"n50":[1-9][0-9]{2}'; then
    echo "assembly-smoke: FAIL — N50 below 100 bp (or missing): $final" >&2
    exit 1
fi
echo "assembly-smoke: job resumed from checkpoint and completed (status: resumed=true)"

curl -fsS "http://$addr/v1/jobs/$job/result" > "$tmp/contigs.fa"
if ! head -1 "$tmp/contigs.fa" | grep -q '^>contig_'; then
    echo "assembly-smoke: FAIL — result is not contig FASTA:" >&2
    head -3 "$tmp/contigs.fa" >&2
    exit 1
fi
echo "assembly-smoke: streamed $(grep -c '^>' "$tmp/contigs.fa") contig(s)"

# Metrics: exposition stays lint-clean and the jobs families exist.
curl -fsS "http://$addr/metrics" > "$tmp/metrics.txt"
"$tmp/bin/metricslint" < "$tmp/metrics.txt"
for want in darwin_jobs_submitted_total darwin_jobs_completed_total \
    darwin_jobs_checkpoints_written_total darwin_jobs_resumed_total; do
    if ! grep -q "^$want" "$tmp/metrics.txt"; then
        echo "assembly-smoke: FAIL — /metrics missing $want" >&2
        exit 1
    fi
done
echo "assembly-smoke: /metrics lint-clean with jobs/* families"

# Client mode: a fresh job end-to-end through darwin-client.
"$tmp/bin/darwin-client" -jobs-target "$addr" -reads "$tmp/asm_reads.fq" \
    -job-polish 0 -job-poll 100ms -job-out "$tmp/client_contigs.fa" 2> "$tmp/client.log"
if ! head -1 "$tmp/client_contigs.fa" | grep -q '^>contig_'; then
    echo "assembly-smoke: FAIL — client job mode produced no contigs:" >&2
    cat "$tmp/client.log" >&2
    exit 1
fi
echo "assembly-smoke: darwin-client -jobs-target submit/poll/fetch OK"

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "assembly-smoke: FAIL — darwind exited non-zero on final SIGTERM:" >&2
    cat "$tmp/darwind2.log" >&2
    exit 1
fi
pid=""
echo "assembly-smoke: OK (kill-and-resume durability, metrics, client mode)"
