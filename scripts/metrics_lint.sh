#!/usr/bin/env bash
# metrics-lint: validate the OpenMetrics exposition of a live darwind.
#   1. build darwind, genomesim, readsim, metricslint
#   2. start darwind on a synthetic genome, wait for /readyz
#   3. push one mapping request through so the serving-path metrics
#      (core/*, shard/*, server/*) all have samples
#   4. scrape /metrics and lint it (syntax, duplicate families,
#      samples without a declared family, histogram bucket invariants)
#   5. assert the expected metric namespaces appear, and that
#      /v1/stats serves the rolling-window SLO JSON
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "metrics-lint: building binaries"
go build -o "$tmp/bin/" ./cmd/darwind ./cmd/genomesim ./cmd/readsim ./cmd/metricslint

echo "metrics-lint: generating synthetic genome and reads"
"$tmp/bin/genomesim" -len 80000 -seed 11 -out "$tmp/ref.fa" 2>/dev/null
"$tmp/bin/readsim" -ref "$tmp/ref.fa" -n 8 -len 1000 -seed 12 -out "$tmp/reads.fq" 2>/dev/null

"$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
    -k 11 -n 400 -h 20 -shards 2 2> "$tmp/darwind.log" &
pid=$!

addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$tmp/darwind.log" | head -1)
    if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "metrics-lint: FAIL — darwind exited early:" >&2
        cat "$tmp/darwind.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "metrics-lint: FAIL — darwind never became ready" >&2
    exit 1
fi

# One mapping request so the core/shard/server serving metrics exist.
seq=$(sed -n 2p "$tmp/reads.fq")
curl -fsS -X POST "http://$addr/v1/map" -H 'Content-Type: application/json' \
    -d "{\"reads\":[{\"name\":\"r1\",\"seq\":\"$seq\"}]}" >/dev/null

curl -fsS "http://$addr/metrics" > "$tmp/metrics.txt"
"$tmp/bin/metricslint" < "$tmp/metrics.txt"

for want in darwin_core_reads_total darwin_shard_ darwin_server_ "# EOF"; do
    if ! grep -q "$want" "$tmp/metrics.txt"; then
        echo "metrics-lint: FAIL — /metrics missing expected content: $want" >&2
        exit 1
    fi
done

# The default kernel mode is auto: a mapped high-identity read must
# have routed at least one extension tile through the bitvector tier.
if ! grep -Eq '^darwin_gact_tile_bitvector_total [1-9]' "$tmp/metrics.txt"; then
    echo "metrics-lint: FAIL — darwin_gact_tile_bitvector_total missing or zero:" >&2
    grep darwin_gact_tile "$tmp/metrics.txt" >&2 || true
    exit 1
fi

# The SLO endpoint must serve both windows with a non-zero request
# count after the traffic above.
curl -fsS "http://$addr/v1/stats" > "$tmp/stats.json"
for want in '"1m"' '"5m"' '"map_latency_ms_p99"'; do
    if ! grep -q "$want" "$tmp/stats.json"; then
        echo "metrics-lint: FAIL — /v1/stats missing $want:" >&2
        cat "$tmp/stats.json" >&2
        exit 1
    fi
done
if ! grep -Eq '"requests": [1-9]' "$tmp/stats.json"; then
    echo "metrics-lint: FAIL — /v1/stats windows saw no requests:" >&2
    cat "$tmp/stats.json" >&2
    exit 1
fi

kill -TERM "$pid"
wait "$pid" || true
pid=""
echo "metrics-lint: OK (exposition valid, SLO windows live)"
