#!/usr/bin/env bash
# cluster-scaling: the EXPERIMENTS.md "Distributed scatter-gather"
# numbers. Two measurements:
#
#   A. Scaling curve — reads/s through darwin-router over 1/2/4
#      darwind workers, against a monolithic darwind, at a FIXED
#      per-node shard residency budget (-shard-mem) smaller than the
#      full seed table. Workers use replication 1 so aggregate
#      resident index grows with node count: the monolith (and the
#      1-worker cluster) must rebuild evicted shards every batch,
#      2+ workers hold their owned shards resident. An unbounded
#      monolith row is printed too, so the overhead of the scatter
#      hop is visible separately from the memory story.
#
#   B. Hedge tail latency — p50/p99 through a 2-worker replication-2
#      cluster, healthy vs one replica SIGSTOPped, at two -hedge-delay
#      settings. Breakers are disabled (-breaker-threshold huge) so
#      every batch actually pays the hedge path rather than learning
#      to skip the stalled worker.
#
# Not part of `make check` (it is a measurement, not a gate); run
# manually and paste the table into EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && { kill -CONT "$p" 2>/dev/null || true; kill -9 "$p" 2>/dev/null || true; }
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

wait_ready() {
    local log=$1 pid=$2 addr=""
    for _ in $(seq 1 600); do
        addr=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$log" | head -1)
        if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
            echo "$addr"
            return 0
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "cluster-scaling: FAIL — process exited early:" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.1
    done
    echo "cluster-scaling: FAIL — never became ready:" >&2
    cat "$log" >&2
    return 1
}

# run_client TARGET OUTFILE — one warm pass, then the measured pass.
run_client() {
    local target=$1 out=$2
    "$tmp/bin/darwin-client" -target "$target" -reads "$tmp/reads.fq" \
        -requests 2 -concurrency 1 -batch 4 >/dev/null
    "$tmp/bin/darwin-client" -target "$target" -reads "$tmp/reads.fq" \
        -requests 8 -concurrency 1 -batch 4 > "$out"
}

reads_per_s() { awk -F'[ ,]+' '/^throughput:/{print $4}' "$1"; }
lat_p50()    { sed -n 's/^latency: p50=\([^ ]*\).*/\1/p' "$1"; }
lat_p99()    { sed -n 's/.* p99=\([^ ]*\).*/\1/p' "$1"; }

echo "cluster-scaling: building binaries"
go build -o "$tmp/bin/" ./cmd/darwind ./cmd/darwin-router ./cmd/darwin-client \
    ./cmd/genomesim ./cmd/readsim

echo "cluster-scaling: generating 4 Mbp genome + 32 x 3 kbp reads"
"$tmp/bin/genomesim" -len 4000000 -seed 31 -out "$tmp/ref.fa" 2>/dev/null
"$tmp/bin/readsim" -ref "$tmp/ref.fa" -n 32 -len 3000 -seed 32 -out "$tmp/reads.fq" 2>/dev/null

# FASTA-built engines (no .dwi): an evicted shard costs a real
# BuildRange rebuild, which is exactly what a resident budget buys off.
engine_flags=(-k 13 -n 600 -h 24 -shards 8 -batch-wait 2ms -no-sidecar)

# --- A1: unbounded monolith (also sizes the budget) -----------------
echo "cluster-scaling: monolith, unbounded"
"$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
    "${engine_flags[@]}" 2> "$tmp/mono_unbounded.log" &
pid=$!; pids+=("$pid")
addr=$(wait_ready "$tmp/mono_unbounded.log" "$pid")
run_client "$addr" "$tmp/mono_unbounded.out"
peak=$(curl -fsS "http://$addr/metrics" \
    | awk '/^darwin_shard_resident_bytes_peak /{print int($2)}')
kill -TERM "$pid"; wait "$pid" 2>/dev/null || true

# Fixed per-node budget: 5/8 of the full table. The monolith can hold
# 5 of its 8 shard tables; a 2-worker replication-1 node owns 4.
budget=$(( peak * 5 / 8 ))
echo "cluster-scaling: full table peak = $peak bytes, per-node budget = $budget bytes"

# --- A2: budgeted monolith ------------------------------------------
echo "cluster-scaling: monolith, budget $budget"
"$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
    "${engine_flags[@]}" -shard-mem "$budget" 2> "$tmp/mono_budget.log" &
pid=$!; pids+=("$pid")
addr=$(wait_ready "$tmp/mono_budget.log" "$pid")
run_client "$addr" "$tmp/mono_budget.out"
kill -TERM "$pid"; wait "$pid" 2>/dev/null || true

# --- A3: router over 1 / 2 / 4 workers at the same per-node budget --
# Worker names hash to ownership via rendezvous; with the node0..3
# roster over 8 shards the splits are 8 / 4+4 / 1+2+3+2.
for n in 1 2 4; do
    echo "cluster-scaling: $n worker(s), per-node budget $budget"
    roster=""
    for i in $(seq 0 $((n - 1))); do
        roster="${roster:+$roster,}node$i=placeholder:$i"
    done
    worker_addrs=""
    wpids=()
    for i in $(seq 0 $((n - 1))); do
        "$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
            "${engine_flags[@]}" -shard-mem "$budget" \
            -worker-name "node$i" -cluster-workers "$roster" \
            -cluster-replication 1 2> "$tmp/worker_${n}_$i.log" &
        wpid=$!; pids+=("$wpid"); wpids+=("$wpid")
    done
    workers=""
    for i in $(seq 0 $((n - 1))); do
        waddr=$(wait_ready "$tmp/worker_${n}_$i.log" "${wpids[$i]}")
        workers="${workers:+$workers,}node$i=$waddr"
    done
    "$tmp/bin/darwin-router" -addr 127.0.0.1:0 -workers "$workers" \
        -replication 1 2> "$tmp/router_$n.log" &
    rpid=$!; pids+=("$rpid")
    raddr=$(wait_ready "$tmp/router_$n.log" "$rpid")
    run_client "$raddr" "$tmp/cluster_$n.out"
    kill -TERM "$rpid"; wait "$rpid" 2>/dev/null || true
    for p in "${wpids[@]}"; do kill -TERM "$p" 2>/dev/null || true; done
    for p in "${wpids[@]}"; do wait "$p" 2>/dev/null || true; done
done

echo
echo "cluster-scaling: === scaling curve (reads/s, fixed per-node budget) ==="
printf '%-28s %s\n' "monolith (unbounded)" "$(reads_per_s "$tmp/mono_unbounded.out")"
printf '%-28s %s\n' "monolith (budget)"    "$(reads_per_s "$tmp/mono_budget.out")"
for n in 1 2 4; do
    printf '%-28s %s\n' "router + $n worker(s)" "$(reads_per_s "$tmp/cluster_$n.out")"
done
mono=$(reads_per_s "$tmp/mono_budget.out")
two=$(reads_per_s "$tmp/cluster_2.out")
speedup=$(awk -v a="$two" -v b="$mono" 'BEGIN{printf "%.2f", a/b}')
echo "cluster-scaling: 2-worker speedup over budgeted monolith = ${speedup}x (bar: >= 1.6x)"
if awk -v s="$speedup" 'BEGIN{exit !(s >= 1.6)}'; then :; else
    echo "cluster-scaling: FAIL — 2-worker speedup below 1.6x" >&2
    exit 1
fi

# --- B: hedge tail latency ------------------------------------------
# Small genome: map time should be negligible next to the hedge delay.
echo
echo "cluster-scaling: hedge tail latency (2 workers, replication 2)"
"$tmp/bin/genomesim" -len 150000 -seed 41 -out "$tmp/href.fa" 2>/dev/null
"$tmp/bin/readsim" -ref "$tmp/href.fa" -n 32 -len 1200 -seed 42 -out "$tmp/hreads.fq" 2>/dev/null
hflags=(-k 11 -n 400 -h 20 -shards 2 -batch-wait 2ms -no-sidecar)
hroster='node0=placeholder:0,node1=placeholder:1'
hpids=()
for i in 0 1; do
    "$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/href.fa" \
        "${hflags[@]}" -worker-name "node$i" -cluster-workers "$hroster" \
        -cluster-replication 2 2> "$tmp/hworker_$i.log" &
    hp=$!; pids+=("$hp"); hpids+=("$hp")
done
h0=$(wait_ready "$tmp/hworker_0.log" "${hpids[0]}")
h1=$(wait_ready "$tmp/hworker_1.log" "${hpids[1]}")
hworkers="node0=$h0,node1=$h1"

# Both routers boot (and probe the workers) while everything is
# healthy; the stalled runs then go through already-live routers — a
# fresh router could not probe past a SIGSTOPped worker.
"$tmp/bin/darwin-router" -addr 127.0.0.1:0 -workers "$hworkers" \
    -replication 2 -hedge-delay 250ms \
    -breaker-threshold 1000000 2> "$tmp/hrouter_250.log" &
r250=$!; pids+=("$r250")
"$tmp/bin/darwin-router" -addr 127.0.0.1:0 -workers "$hworkers" \
    -replication 2 -hedge-delay 50ms \
    -breaker-threshold 1000000 2> "$tmp/hrouter_50.log" &
r50=$!; pids+=("$r50")
ra250=$(wait_ready "$tmp/hrouter_250.log" "$r250")
ra50=$(wait_ready "$tmp/hrouter_50.log" "$r50")

hedge_run() {
    local ra=$1 out=$2
    "$tmp/bin/darwin-client" -target "$ra" -reads "$tmp/hreads.fq" \
        -requests 16 -concurrency 1 -batch 4 > "$out"
}

hedge_run "$ra250" "$tmp/hedge_healthy.out"

# Stall shard 0's primary (from the router's topology view) so roughly
# half the scatter sub-requests hang until the hedge fires.
primary=$(curl -fsS "http://$ra250/v1/cluster" | tr -d ' \n' \
    | sed -n 's/.*"replicas":\[\[\"\([^"]*\)".*/\1/p')
case "$primary" in
    node0) victim=${hpids[0]} ;;
    node1) victim=${hpids[1]} ;;
    *) echo "cluster-scaling: FAIL — cannot resolve shard 0 primary (got '$primary')" >&2; exit 1 ;;
esac
kill -STOP "$victim"
hedge_run "$ra250" "$tmp/hedge_250.out"
hedge_run "$ra50" "$tmp/hedge_50.out"
kill -CONT "$victim"
kill -TERM "$r250" "$r50"
wait "$r250" 2>/dev/null || true
wait "$r50" 2>/dev/null || true
for p in "${hpids[@]}"; do kill -TERM "$p" 2>/dev/null || true; done
for p in "${hpids[@]}"; do wait "$p" 2>/dev/null || true; done

echo
echo "cluster-scaling: === hedge tail latency (p50 / p99 per request) ==="
printf '%-36s %-12s %s\n' "healthy, hedge 250ms" \
    "$(lat_p50 "$tmp/hedge_healthy.out")" "$(lat_p99 "$tmp/hedge_healthy.out")"
printf '%-36s %-12s %s\n' "$primary stalled, hedge 250ms" \
    "$(lat_p50 "$tmp/hedge_250.out")" "$(lat_p99 "$tmp/hedge_250.out")"
printf '%-36s %-12s %s\n' "$primary stalled, hedge 50ms" \
    "$(lat_p50 "$tmp/hedge_50.out")" "$(lat_p99 "$tmp/hedge_50.out")"
echo "cluster-scaling: OK"
