#!/usr/bin/env bash
# index-smoke: persistent index format roundtrip through the CLIs.
#   1. build darwin, darwin-index, genomesim, readsim
#   2. darwin-index build + inspect + verify (monolithic and sharded)
#   3. map reads three ways — FASTA build, explicit -index, discovered
#      sidecar — and assert the SAM output is byte-identical
#   4. corrupt the sidecar: verify fails with checksum_mismatch, and
#      darwin falls back to the FASTA build with identical output
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT

echo "index-smoke: building binaries"
go build -o "$tmp/bin/" ./cmd/darwin ./cmd/darwin-index ./cmd/genomesim ./cmd/readsim

echo "index-smoke: generating synthetic genome and reads"
"$tmp/bin/genomesim" -len 150000 -seed 7 -out "$tmp/ref.fa" 2>/dev/null
"$tmp/bin/readsim" -ref "$tmp/ref.fa" -n 24 -len 1200 -seed 9 -out "$tmp/reads.fq" 2>/dev/null

args="-reads $tmp/reads.fq -k 11 -n 400 -h 20"

# Baseline: ordinary FASTA build (no sidecar exists yet, but pin it).
"$tmp/bin/darwin" -ref "$tmp/ref.fa" $args -no-sidecar -out "$tmp/base.sam" 2>/dev/null

echo "index-smoke: building and verifying the index"
"$tmp/bin/darwin-index" build -ref "$tmp/ref.fa" -k 11 -n 400 -h 20 2> "$tmp/build.log"
cat "$tmp/build.log"
[ -f "$tmp/ref.fa.dwi" ] || { echo "index-smoke: FAIL — no sidecar written" >&2; exit 1; }
"$tmp/bin/darwin-index" verify "$tmp/ref.fa.dwi"
"$tmp/bin/darwin-index" inspect "$tmp/ref.fa.dwi" > "$tmp/inspect.json"
grep -q '"Version": 1' "$tmp/inspect.json" || {
    echo "index-smoke: FAIL — inspect output missing version:" >&2
    cat "$tmp/inspect.json" >&2
    exit 1
}

echo "index-smoke: mapping from the explicit index"
"$tmp/bin/darwin" -ref "$tmp/ref.fa" $args -index "$tmp/ref.fa.dwi" -out "$tmp/idx.sam" 2> "$tmp/idx.log"
grep -q "mapped prebuilt index" "$tmp/idx.log" || {
    echo "index-smoke: FAIL — -index run did not report the mapped load:" >&2
    cat "$tmp/idx.log" >&2
    exit 1
}
diff "$tmp/base.sam" "$tmp/idx.sam" || {
    echo "index-smoke: FAIL — explicit-index SAM differs from FASTA-build SAM" >&2
    exit 1
}

echo "index-smoke: mapping from the discovered sidecar"
"$tmp/bin/darwin" -ref "$tmp/ref.fa" $args -out "$tmp/side.sam" 2> "$tmp/side.log"
grep -q "mapped prebuilt index" "$tmp/side.log" || {
    echo "index-smoke: FAIL — sidecar next to the FASTA was not auto-loaded:" >&2
    cat "$tmp/side.log" >&2
    exit 1
}
diff "$tmp/base.sam" "$tmp/side.sam" || {
    echo "index-smoke: FAIL — sidecar SAM differs from FASTA-build SAM" >&2
    exit 1
}

echo "index-smoke: sharded index roundtrip"
"$tmp/bin/darwin-index" build -ref "$tmp/ref.fa" -out "$tmp/sharded.dwi" \
    -k 11 -n 400 -h 20 -shards 3 2>/dev/null
"$tmp/bin/darwin-index" verify "$tmp/sharded.dwi"
"$tmp/bin/darwin" -ref "$tmp/ref.fa" $args -shards 3 -index "$tmp/sharded.dwi" \
    -out "$tmp/shard.sam" 2>/dev/null
diff "$tmp/base.sam" "$tmp/shard.sam" || {
    echo "index-smoke: FAIL — sharded-index SAM differs from FASTA-build SAM" >&2
    exit 1
}

echo "index-smoke: corruption is detected and degraded gracefully"
size=$(wc -c < "$tmp/ref.fa.dwi")
printf '\xff' | dd of="$tmp/ref.fa.dwi" bs=1 seek=$((size - 1)) conv=notrunc 2>/dev/null
if "$tmp/bin/darwin-index" verify "$tmp/ref.fa.dwi" 2> "$tmp/verify.log"; then
    echo "index-smoke: FAIL — verify passed a corrupted index" >&2
    exit 1
fi
grep -q "checksum_mismatch" "$tmp/verify.log" || {
    echo "index-smoke: FAIL — corruption not reported as checksum_mismatch:" >&2
    cat "$tmp/verify.log" >&2
    exit 1
}
# A corrupt *discovered* sidecar must degrade to the FASTA build, and a
# corrupt *explicit* -index must fail hard.
"$tmp/bin/darwin" -ref "$tmp/ref.fa" $args -out "$tmp/fall.sam" 2> "$tmp/fall.log"
grep -q "rebuilding from FASTA" "$tmp/fall.log" || {
    echo "index-smoke: FAIL — corrupt sidecar did not fall back:" >&2
    cat "$tmp/fall.log" >&2
    exit 1
}
diff "$tmp/base.sam" "$tmp/fall.sam" || {
    echo "index-smoke: FAIL — fallback SAM differs from FASTA-build SAM" >&2
    exit 1
}
if "$tmp/bin/darwin" -ref "$tmp/ref.fa" $args -index "$tmp/ref.fa.dwi" -out /dev/null 2>/dev/null; then
    echo "index-smoke: FAIL — corrupt explicit -index did not fail hard" >&2
    exit 1
fi

echo "index-smoke: OK (bit-identical SAM across build/index/sidecar, corruption detected)"
