#!/usr/bin/env bash
# chaos-smoke: fault-injection check of the darwind resilience layer.
#   1. build darwind, darwin-client, genomesim, readsim
#   2. assert -faults is refused without DARWIN_ALLOW_FAULTS=1
#   3. start darwind with injected flush errors, per-read panics, and
#      stream hiccups, plus -leak-check
#   4. drive load through darwin-client (retries on) and assert every
#      response was well-formed: NDJSON lines or structured errors,
#      never a malformed body
#   5. assert the circuit breaker on a doomed reference opens within
#      -breaker-threshold attempts and fails fast with circuit_open
#   6. SIGTERM darwind, assert clean drain AND goroutines back to the
#      pre-serve baseline (-leak-check)
#   7. index/load fault: a poisoned sidecar degrades to a FASTA rebuild
#   8. cluster/scatter fault: a darwin-router whose scatter attempts
#      fail must return structured errors, open per-worker breakers
#      within -breaker-threshold, and recover through half-open probes
#      once the fault budget is exhausted
#   9. jobs/checkpoint fault: an assembly job whose checkpoint writes
#      fail must still complete (checkpointing is best-effort), with
#      the failures counted in darwin_jobs_checkpoint_errors_total
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "chaos-smoke: building binaries"
go build -o "$tmp/bin/" ./cmd/darwind ./cmd/darwin-client ./cmd/genomesim ./cmd/readsim ./cmd/darwin-index ./cmd/darwin-router

echo "chaos-smoke: generating synthetic genome and reads"
"$tmp/bin/genomesim" -len 150000 -seed 7 -out "$tmp/ref.fa" 2>/dev/null
"$tmp/bin/readsim" -ref "$tmp/ref.fa" -n 48 -len 1200 -seed 9 -out "$tmp/reads.fq" 2>/dev/null

# Injection must be an explicit opt-in: without DARWIN_ALLOW_FAULTS=1
# a -faults spec is refused at startup, before anything is armed.
if env -u DARWIN_ALLOW_FAULTS "$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
    -faults 'server/admit=error' 2> "$tmp/gate.log"; then
    echo "chaos-smoke: FAIL — darwind accepted -faults without DARWIN_ALLOW_FAULTS=1" >&2
    exit 1
fi
if ! grep -q "refusing to arm" "$tmp/gate.log"; then
    echo "chaos-smoke: FAIL — no refusal message for ungated -faults:" >&2
    cat "$tmp/gate.log" >&2
    exit 1
fi
echo "chaos-smoke: ungated -faults correctly refused"

spec='server/flush=p=0.15,error=chaos flush;core/map_read=every=9,panic=poisoned read;server/stream=p=0.02,error=stream hiccup;seed=11'
DARWIN_ALLOW_FAULTS=1 "$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
    -k 11 -n 400 -h 20 -batch-wait 2ms \
    -allow-ref-load -breaker-threshold 2 -breaker-cooldown 60s \
    -leak-check -faults "$spec" 2> "$tmp/darwind.log" &
pid=$!

addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$tmp/darwind.log" | head -1)
    if [ -n "$addr" ]; then
        if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
            break
        fi
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "chaos-smoke: FAIL — darwind exited early:" >&2
        cat "$tmp/darwind.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "chaos-smoke: FAIL — darwind never became ready:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
if ! grep -q "fault injection active" "$tmp/darwind.log"; then
    echo "chaos-smoke: FAIL — no fault-injection startup line:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
echo "chaos-smoke: darwind ready on $addr with faults armed"

# Load under chaos. The client validates every NDJSON line; a body the
# server half-wrote would show up as "malformed lines" in the summary.
"$tmp/bin/darwin-client" -addr "$addr" -reads "$tmp/reads.fq" \
    -requests 30 -concurrency 4 -batch 4 -retries 4 > "$tmp/client.out"
cat "$tmp/client.out"
if grep -q "malformed lines" "$tmp/client.out"; then
    echo "chaos-smoke: FAIL — client saw malformed response lines under faults" >&2
    exit 1
fi
ok=$(awk '/^requests:/{print $2}' "$tmp/client.out")
if [ -z "$ok" ] || [ "$ok" -lt 1 ]; then
    echo "chaos-smoke: FAIL — no successful requests under chaos (ok=$ok)" >&2
    exit 1
fi
echo "chaos-smoke: $ok requests succeeded under injected faults, all responses well-formed"

# Circuit breaker: a doomed on-demand reference must fail structured
# (ref_load_failed) for exactly -breaker-threshold attempts, then fail
# fast with circuit_open.
doomed='{"reference":"/nonexistent/doomed.fa","reads":[{"name":"r","seq":"ACGTACGTACGTACGT"}]}'
for i in 1 2; do
    body=$(curl -sS -X POST -d "$doomed" "http://$addr/v1/map")
    if ! echo "$body" | grep -q 'ref_load_failed'; then
        echo "chaos-smoke: FAIL — attempt $i: expected ref_load_failed, got: $body" >&2
        exit 1
    fi
done
body=$(curl -sS -X POST -d "$doomed" "http://$addr/v1/map")
if ! echo "$body" | grep -q 'circuit_open'; then
    echo "chaos-smoke: FAIL — breaker did not open after 2 failures, got: $body" >&2
    exit 1
fi
echo "chaos-smoke: breaker opened after exactly 2 doomed build attempts"

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "chaos-smoke: FAIL — darwind exited non-zero on SIGTERM (drain or leak check failed):" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
pid=""
if ! grep -q "drain complete" "$tmp/darwind.log"; then
    echo "chaos-smoke: FAIL — no clean-drain log line:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
if ! grep -q "leak check passed" "$tmp/darwind.log"; then
    echo "chaos-smoke: FAIL — no leak-check pass line:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
echo "chaos-smoke: OK (clean drain, goroutines back to baseline)"

# ---------------------------------------------------------------------------
# Index-load fault: with an index/load error armed, a discovered sidecar
# index fails to map — darwind must log the degradation, rebuild from
# FASTA, and still become ready and serve.
# ---------------------------------------------------------------------------
echo "chaos-smoke: index/load fault with a sidecar present"
"$tmp/bin/darwin-index" build -ref "$tmp/ref.fa" -k 11 -n 400 -h 20 2>/dev/null
[ -f "$tmp/ref.fa.dwi" ] || { echo "chaos-smoke: FAIL — no sidecar written" >&2; exit 1; }

DARWIN_ALLOW_FAULTS=1 "$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
    -k 11 -n 400 -h 20 -batch-wait 2ms \
    -faults 'index/load=error=chaos index load;seed=13' 2> "$tmp/darwind3.log" &
pid=$!

addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$tmp/darwind3.log" | head -1)
    if [ -n "$addr" ]; then
        if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
            break
        fi
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "chaos-smoke: FAIL — darwind with a poisoned index load exited early:" >&2
        cat "$tmp/darwind3.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "chaos-smoke: FAIL — darwind never became ready past the poisoned index load:" >&2
    cat "$tmp/darwind3.log" >&2
    exit 1
fi
if ! grep -q "sidecar index load failed" "$tmp/darwind3.log"; then
    echo "chaos-smoke: FAIL — no sidecar-degradation log line:" >&2
    cat "$tmp/darwind3.log" >&2
    exit 1
fi

"$tmp/bin/darwin-client" -addr "$addr" -reads "$tmp/reads.fq" \
    -requests 4 -concurrency 2 -batch 4 -out "$tmp/out3.sam" >/dev/null
if ! grep -qv '^@' "$tmp/out3.sam"; then
    echo "chaos-smoke: FAIL — no SAM records after sidecar fallback" >&2
    exit 1
fi

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "chaos-smoke: FAIL — fallback darwind exited non-zero on SIGTERM:" >&2
    cat "$tmp/darwind3.log" >&2
    exit 1
fi
pid=""
echo "chaos-smoke: OK (poisoned index load degraded to a FASTA rebuild and served)"

# ---------------------------------------------------------------------------
# cluster/scatter fault: every scatter attempt out of the router fails
# (per attempt = per backend) for a bounded budget. The router must
# return structured errors, open per-worker breakers within
# -breaker-threshold failures, and recover through half-open probes
# once the budget is exhausted.
# ---------------------------------------------------------------------------
echo "chaos-smoke: cluster/scatter fault through darwin-router"
"$tmp/bin/darwin-index" build -ref "$tmp/ref.fa" -out "$tmp/cluster.dwi" \
    -k 11 -n 400 -h 20 -shards 2 2>/dev/null

cluster_flags=(-ref "$tmp/ref.fa" -index "$tmp/cluster.dwi" -k 11 -n 400 -h 20 -shards 2 -batch-wait 2ms)
roster_names='cw0=placeholder:1,cw1=placeholder:2'
"$tmp/bin/darwind" -addr 127.0.0.1:0 "${cluster_flags[@]}" \
    -worker-name cw0 -cluster-workers "$roster_names" -cluster-replication 2 2> "$tmp/cw0.log" &
cw0_pid=$!
"$tmp/bin/darwind" -addr 127.0.0.1:0 "${cluster_flags[@]}" \
    -worker-name cw1 -cluster-workers "$roster_names" -cluster-replication 2 2> "$tmp/cw1.log" &
cw1_pid=$!
cleanup_cluster() {
    for p in "$cw0_pid" "$cw1_pid"; do kill "$p" 2>/dev/null || true; done
}
trap 'cleanup_cluster; cleanup' EXIT

wait_addr() {
    local log=$1 p=$2 a=""
    for _ in $(seq 1 300); do
        a=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$log" | head -1)
        if [ -n "$a" ] && curl -fsS "http://$a/readyz" >/dev/null 2>&1; then
            echo "$a"; return 0
        fi
        kill -0 "$p" 2>/dev/null || { cat "$log" >&2; return 1; }
        sleep 0.1
    done
    cat "$log" >&2; return 1
}
cw0_addr=$(wait_addr "$tmp/cw0.log" "$cw0_pid")
cw1_addr=$(wait_addr "$tmp/cw1.log" "$cw1_pid")

# times=6 covers request 1 (2 shards x 2 replicas = 4 attempts) plus
# the first half-open probes, then runs dry so recovery is observable.
DARWIN_ALLOW_FAULTS=1 "$tmp/bin/darwin-router" -addr 127.0.0.1:0 \
    -workers "cw0=$cw0_addr,cw1=$cw1_addr" -replication 2 \
    -breaker-threshold 2 -breaker-cooldown 300ms -hedge-delay 5s \
    -faults 'cluster/scatter=every=1,times=6,error=chaos scatter;seed=17' 2> "$tmp/router.log" &
router_pid=$!
trap 'kill "$router_pid" 2>/dev/null || true; cleanup_cluster; cleanup' EXIT
router_addr=$(wait_addr "$tmp/router.log" "$router_pid")

batch='{"reads":[{"name":"r","seq":"ACGTACGTACGTACGTACGTACGTACGT"}]}'
body=$(curl -sS -X POST -d "$batch" "http://$router_addr/v1/map")
if ! echo "$body" | grep -q '"code"'; then
    echo "chaos-smoke: FAIL — router returned an unstructured error under faults: $body" >&2
    exit 1
fi
opens=$(curl -fsS "http://$router_addr/metrics" \
    | awk '/^darwin_cluster_breaker_opens_total /{print int($2)}')
if [ -z "$opens" ] || [ "$opens" -lt 1 ]; then
    echo "chaos-smoke: FAIL — scatter faults did not open a worker breaker (opens=$opens)" >&2
    exit 1
fi
echo "chaos-smoke: scatter faults returned structured errors and opened $opens worker breaker(s)"

# Recovery: once the fault budget is exhausted and the cooldown has
# passed, half-open probes must close the breakers and serve again.
recovered=""
for _ in $(seq 1 40); do
    if curl -fsS -X POST -d "$batch" "http://$router_addr/v1/map" >/dev/null 2>&1; then
        recovered=1
        break
    fi
    sleep 0.3
done
if [ -z "$recovered" ]; then
    echo "chaos-smoke: FAIL — router never recovered after the fault budget ran dry:" >&2
    cat "$tmp/router.log" >&2
    exit 1
fi
echo "chaos-smoke: OK (router recovered through half-open probes after the fault budget ran dry)"
kill -TERM "$router_pid" 2>/dev/null || true
wait "$router_pid" 2>/dev/null || true
cleanup_cluster

# ---------------------------------------------------------------------------
# jobs/checkpoint fault: every checkpoint write of an assembly job
# fails. Checkpointing is best-effort — the job must still run to
# completion, with each swallowed failure counted in
# darwin_jobs_checkpoint_errors_total.
# ---------------------------------------------------------------------------
echo "chaos-smoke: jobs/checkpoint fault during an assembly job"
"$tmp/bin/readsim" -ref "$tmp/ref.fa" -n 40 -len 1200 -seed 21 -out "$tmp/jobreads.fq" 2>/dev/null
awk 'NR%4==1{sub(/^@/,">");print} NR%4==2{print}' "$tmp/jobreads.fq" > "$tmp/jobreads.fa"

DARWIN_ALLOW_FAULTS=1 "$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
    -k 11 -n 400 -h 20 -batch-wait 2ms \
    -jobs-dir "$tmp/chaosjobs" -jobs-checkpoint-every 4 \
    -faults 'jobs/checkpoint=every=1,error=chaos checkpoint;seed=23' 2> "$tmp/darwind4.log" &
pid=$!

addr=$(wait_addr "$tmp/darwind4.log" "$pid")
submit=$(curl -fsS -X POST -H 'Content-Type: text/x-fasta' \
    --data-binary @"$tmp/jobreads.fa" \
    "http://$addr/v1/jobs?kind=assemble&polish=0")
job=$(echo "$submit" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
if [ -z "$job" ]; then
    echo "chaos-smoke: FAIL — job submit under checkpoint faults failed: $submit" >&2
    exit 1
fi

done_st=""
for _ in $(seq 1 600); do
    st=$(curl -fsS "http://$addr/v1/jobs/$job")
    if echo "$st" | grep -q '"state":"done"'; then
        done_st=$st
        break
    fi
    if echo "$st" | grep -Eq '"state":"(failed|canceled)"'; then
        echo "chaos-smoke: FAIL — checkpoint faults killed the job (must be best-effort): $st" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$done_st" ]; then
    echo "chaos-smoke: FAIL — job under checkpoint faults never finished" >&2
    cat "$tmp/darwind4.log" >&2
    exit 1
fi

ckpt_errs=$(curl -fsS "http://$addr/metrics" \
    | awk '/^darwin_jobs_checkpoint_errors_total /{print int($2)}')
if [ -z "$ckpt_errs" ] || [ "$ckpt_errs" -lt 1 ]; then
    echo "chaos-smoke: FAIL — no checkpoint-error samples under jobs/checkpoint faults (errs=$ckpt_errs)" >&2
    exit 1
fi

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "chaos-smoke: FAIL — darwind exited non-zero after checkpoint-fault job:" >&2
    cat "$tmp/darwind4.log" >&2
    exit 1
fi
pid=""
echo "chaos-smoke: OK (job completed despite $ckpt_errs swallowed checkpoint failures)"
