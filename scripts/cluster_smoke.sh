#!/usr/bin/env bash
# cluster-smoke: end-to-end check of the distributed scatter-gather
# tier (darwin-router + darwind cluster workers).
#   1. build binaries, generate a synthetic genome + reads, build one
#      shared .dwi index
#   2. map everything through a monolithic darwind -> mono.sam
#   3. boot 2 cluster workers from the shared .dwi (replication 2, so
#      each worker owns every shard) and a router over them
#   4. map the same reads through the router and assert the SAM is
#      byte-identical to the monolith
#   5. SIGSTOP whichever worker is primary for shard 0: sub-requests
#      to it hang, the hedge fires after -hedge-delay, the survivor
#      answers — the batch must complete, stay byte-identical, and
#      darwin_cluster_hedge_fired_total must go positive
#   6. SIGKILL the stopped worker: connections now fail outright, the
#      router fails over immediately — still byte-identical
#   7. SIGTERM the router, assert clean drain
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

# wait_ready LOGFILE PID — scrape "serving on http://ADDR/" from a
# darwind/darwin-router log and wait for /readyz; echoes the address.
wait_ready() {
    local log=$1 pid=$2 addr=""
    for _ in $(seq 1 300); do
        addr=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$log" | head -1)
        if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
            echo "$addr"
            return 0
        fi
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "cluster-smoke: FAIL — process exited early:" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.1
    done
    echo "cluster-smoke: FAIL — never became ready:" >&2
    cat "$log" >&2
    return 1
}

echo "cluster-smoke: building binaries"
go build -o "$tmp/bin/" ./cmd/darwind ./cmd/darwin-router ./cmd/darwin-client \
    ./cmd/darwin-index ./cmd/genomesim ./cmd/readsim ./cmd/metricslint

echo "cluster-smoke: generating genome, reads, and the shared .dwi index"
"$tmp/bin/genomesim" -len 150000 -seed 21 -out "$tmp/ref.fa" 2>/dev/null
"$tmp/bin/readsim" -ref "$tmp/ref.fa" -n 32 -len 1200 -seed 22 -out "$tmp/reads.fq" 2>/dev/null
"$tmp/bin/darwin-index" build -ref "$tmp/ref.fa" -k 11 -n 400 -h 20 -shards 4 2>/dev/null
[ -f "$tmp/ref.fa.dwi" ] || { echo "cluster-smoke: FAIL — no .dwi written" >&2; exit 1; }

engine_flags=(-k 11 -n 400 -h 20 -shards 4 -batch-wait 2ms)

echo "cluster-smoke: mapping through a monolithic darwind"
"$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" -index "$tmp/ref.fa.dwi" \
    "${engine_flags[@]}" 2> "$tmp/mono.log" &
mono_pid=$!; pids+=("$mono_pid")
mono_addr=$(wait_ready "$tmp/mono.log" "$mono_pid")
# -concurrency 1 keeps request order deterministic so SAM files diff.
"$tmp/bin/darwin-client" -addr "$mono_addr" -reads "$tmp/reads.fq" \
    -requests 8 -concurrency 1 -batch 4 -out "$tmp/mono.sam" >/dev/null
kill -TERM "$mono_pid"; wait "$mono_pid" || true

# Workers derive shard ownership from the roster *names* (rendezvous
# hashing), so they can boot before any port is known; the router gets
# the same names bound to the real scraped addresses.
echo "cluster-smoke: booting 2 cluster workers from the shared .dwi"
worker_roster_names='w0=placeholder:1,w1=placeholder:2'
"$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" -index "$tmp/ref.fa.dwi" \
    "${engine_flags[@]}" -worker-name w0 -cluster-workers "$worker_roster_names" \
    -cluster-replication 2 2> "$tmp/w0.log" &
w0_pid=$!; pids+=("$w0_pid")
"$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" -index "$tmp/ref.fa.dwi" \
    "${engine_flags[@]}" -worker-name w1 -cluster-workers "$worker_roster_names" \
    -cluster-replication 2 2> "$tmp/w1.log" &
w1_pid=$!; pids+=("$w1_pid")
# Workers are torn down with SIGKILL (that is the point of the test);
# disown them so bash does not report the kills as job failures.
disown "$w0_pid" "$w1_pid"
w0_addr=$(wait_ready "$tmp/w0.log" "$w0_pid")
w1_addr=$(wait_ready "$tmp/w1.log" "$w1_pid")
for log in "$tmp/w0.log" "$tmp/w1.log"; do
    if ! grep -q "cluster worker mode" "$log"; then
        echo "cluster-smoke: FAIL — worker did not enter cluster mode:" >&2
        cat "$log" >&2
        exit 1
    fi
done

echo "cluster-smoke: booting the router over $w0_addr + $w1_addr"
"$tmp/bin/darwin-router" -addr 127.0.0.1:0 \
    -workers "w0=$w0_addr,w1=$w1_addr" -replication 2 \
    -hedge-delay 50ms 2> "$tmp/router.log" &
router_pid=$!; pids+=("$router_pid")
router_addr=$(wait_ready "$tmp/router.log" "$router_pid")
if ! grep -q "cluster probe passed" "$tmp/router.log"; then
    echo "cluster-smoke: FAIL — no probe-passed line:" >&2
    cat "$tmp/router.log" >&2
    exit 1
fi

echo "cluster-smoke: mapping through the router (both workers healthy)"
"$tmp/bin/darwin-client" -target "$router_addr" -reads "$tmp/reads.fq" \
    -requests 8 -concurrency 1 -batch 4 -out "$tmp/cluster.sam" >/dev/null
if ! cmp -s "$tmp/mono.sam" "$tmp/cluster.sam"; then
    echo "cluster-smoke: FAIL — router SAM differs from monolithic darwind:" >&2
    diff "$tmp/mono.sam" "$tmp/cluster.sam" | head -20 >&2
    exit 1
fi
echo "cluster-smoke: router SAM is byte-identical to the monolith"

# The router's exposition goes through the same OpenMetrics writer as
# darwind; lint it and assert the cluster/* namespace is present.
curl -fsS "http://$router_addr/metrics" > "$tmp/router_metrics.txt"
"$tmp/bin/metricslint" < "$tmp/router_metrics.txt"
if ! grep -q '^darwin_cluster_requests_total ' "$tmp/router_metrics.txt"; then
    echo "cluster-smoke: FAIL — router /metrics missing darwin_cluster_* families" >&2
    exit 1
fi
echo "cluster-smoke: router /metrics exposition is lint-clean with cluster/* families"

# Shard 0's primary is deterministic (rendezvous over names); read it
# from the router's topology view so the right worker gets degraded.
primary=$(curl -fsS "http://$router_addr/v1/cluster" | tr -d ' \n' \
    | sed -n 's/.*"replicas":\[\[\"\([^"]*\)".*/\1/p')
case "$primary" in
    w0) victim_pid=$w0_pid ;;
    w1) victim_pid=$w1_pid ;;
    *) echo "cluster-smoke: FAIL — cannot resolve shard 0 primary from /v1/cluster (got '$primary')" >&2
       exit 1 ;;
esac

echo "cluster-smoke: SIGSTOP $primary (shard 0 primary) — hedge must carry the batch"
kill -STOP "$victim_pid"
"$tmp/bin/darwin-client" -target "$router_addr" -reads "$tmp/reads.fq" \
    -requests 8 -concurrency 1 -batch 4 -out "$tmp/hedged.sam" >/dev/null
if ! cmp -s "$tmp/mono.sam" "$tmp/hedged.sam"; then
    echo "cluster-smoke: FAIL — SAM diverged with a stalled replica:" >&2
    diff "$tmp/mono.sam" "$tmp/hedged.sam" | head -20 >&2
    exit 1
fi
hedged=$(curl -fsS "http://$router_addr/metrics" \
    | awk '/^darwin_cluster_hedge_fired_total /{print int($2)}')
if [ -z "$hedged" ] || [ "$hedged" -lt 1 ]; then
    echo "cluster-smoke: FAIL — batch completed but hedge_fired=$hedged (expected > 0)" >&2
    exit 1
fi
echo "cluster-smoke: batch completed via hedged replica (hedge_fired=$hedged), SAM still byte-identical"

echo "cluster-smoke: SIGKILL $primary — failover must carry the batch"
kill -CONT "$victim_pid" 2>/dev/null || true
kill -9 "$victim_pid"
"$tmp/bin/darwin-client" -target "$router_addr" -reads "$tmp/reads.fq" \
    -requests 8 -concurrency 1 -batch 4 -out "$tmp/failover.sam" >/dev/null
if ! cmp -s "$tmp/mono.sam" "$tmp/failover.sam"; then
    echo "cluster-smoke: FAIL — SAM diverged after losing a replica:" >&2
    diff "$tmp/mono.sam" "$tmp/failover.sam" | head -20 >&2
    exit 1
fi
failovers=$(curl -fsS "http://$router_addr/metrics" \
    | awk '/^darwin_cluster_replica_failovers_total /{print int($2)}')
echo "cluster-smoke: batch completed via surviving replica (failovers=$failovers), SAM still byte-identical"

kill -TERM "$router_pid"
if ! wait "$router_pid"; then
    echo "cluster-smoke: FAIL — router exited non-zero on SIGTERM:" >&2
    cat "$tmp/router.log" >&2
    exit 1
fi
if ! grep -q "drain complete" "$tmp/router.log"; then
    echo "cluster-smoke: FAIL — no clean-drain log line:" >&2
    cat "$tmp/router.log" >&2
    exit 1
fi
echo "cluster-smoke: OK (bit-identical scatter-gather, hedged + failover degradation, clean drain)"
