#!/usr/bin/env bash
# serve-smoke: end-to-end check of the darwind serving path.
#   1. build darwind, darwin-client, genomesim, readsim
#   2. generate a synthetic genome + simulated reads
#   3. start darwind, wait for /readyz
#   4. fire darwin-client at it, assert non-empty SAM output
#   5. assert /v1/indexes reports the sharded index's per-shard residency
#   6. SIGTERM darwind, assert clean drain (exit 0 + drain log line)
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
go build -o "$tmp/bin/" ./cmd/darwind ./cmd/darwin-client ./cmd/genomesim ./cmd/readsim ./cmd/darwin-index

echo "serve-smoke: generating synthetic genome and reads"
"$tmp/bin/genomesim" -len 150000 -seed 7 -out "$tmp/ref.fa" 2>/dev/null
"$tmp/bin/readsim" -ref "$tmp/ref.fa" -n 48 -len 1200 -seed 9 -out "$tmp/reads.fq" 2>/dev/null

"$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
    -k 11 -n 400 -h 20 -batch-wait 2ms \
    -shards 4 -shard-mem 256M \
    -report "$tmp/darwind_report.json" 2> "$tmp/darwind.log" &
pid=$!

addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$tmp/darwind.log" | head -1)
    if [ -n "$addr" ]; then
        if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
            break
        fi
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: FAIL — darwind exited early:" >&2
        cat "$tmp/darwind.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: FAIL — darwind never became ready:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
echo "serve-smoke: darwind ready on $addr"

"$tmp/bin/darwin-client" -addr "$addr" -reads "$tmp/reads.fq" \
    -requests 24 -concurrency 4 -batch 4 -out "$tmp/out.sam"

if ! grep -qv '^@' "$tmp/out.sam"; then
    echo "serve-smoke: FAIL — no SAM records in client output" >&2
    exit 1
fi
records=$(grep -cv '^@' "$tmp/out.sam")
echo "serve-smoke: client received $records SAM records"

# The index is served sharded (-shards 4): /v1/indexes must report the
# shard geometry and per-shard residency after the mapping traffic.
curl -fsS "http://$addr/v1/indexes" > "$tmp/indexes.json"
if ! grep -q '"shards": 4' "$tmp/indexes.json"; then
    echo "serve-smoke: FAIL — /v1/indexes reports no 4-shard geometry:" >&2
    cat "$tmp/indexes.json" >&2
    exit 1
fi
if ! grep -Eq '"resident": [1-9]' "$tmp/indexes.json"; then
    echo "serve-smoke: FAIL — /v1/indexes reports no resident shards:" >&2
    cat "$tmp/indexes.json" >&2
    exit 1
fi
if ! grep -q '"shard_detail"' "$tmp/indexes.json" || ! grep -Eq '"resident": true' "$tmp/indexes.json"; then
    echo "serve-smoke: FAIL — /v1/indexes has no per-shard residency detail:" >&2
    cat "$tmp/indexes.json" >&2
    exit 1
fi
echo "serve-smoke: sharded index residency reported on /v1/indexes"

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "serve-smoke: FAIL — darwind exited non-zero on SIGTERM:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
pid=""
if ! grep -q "drain complete" "$tmp/darwind.log"; then
    echo "serve-smoke: FAIL — no clean-drain log line:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
if [ ! -s "$tmp/darwind_report.json" ]; then
    echo "serve-smoke: FAIL — darwind wrote no run report" >&2
    exit 1
fi
echo "serve-smoke: OK (clean drain, run report written)"

# ---------------------------------------------------------------------------
# Phase 2: cold boot from a prebuilt index. darwind maps the .dwi file
# instead of building, so the first request must be served with zero
# index-build work — asserted off /metrics, where a no-build boot shows
# index_load fired and index_build / shard_builds never did.
# ---------------------------------------------------------------------------
echo "serve-smoke: phase 2 — cold boot from a prebuilt index"
"$tmp/bin/darwin-index" build -ref "$tmp/ref.fa" -out "$tmp/ref.dwi" \
    -k 11 -n 400 -h 20 -shards 4 2>/dev/null

"$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" -index "$tmp/ref.dwi" \
    -k 11 -n 400 -h 20 -batch-wait 2ms \
    -shards 4 -shard-mem 256M 2> "$tmp/darwind2.log" &
pid=$!

addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$tmp/darwind2.log" | head -1)
    if [ -n "$addr" ]; then
        if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
            break
        fi
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: FAIL — index-boot darwind exited early:" >&2
        cat "$tmp/darwind2.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: FAIL — index-boot darwind never became ready:" >&2
    cat "$tmp/darwind2.log" >&2
    exit 1
fi
if ! grep -q "index mapped from file" "$tmp/darwind2.log"; then
    echo "serve-smoke: FAIL — darwind did not log the mapped index load:" >&2
    cat "$tmp/darwind2.log" >&2
    exit 1
fi
echo "serve-smoke: index-boot darwind ready on $addr"

"$tmp/bin/darwin-client" -addr "$addr" -reads "$tmp/reads.fq" \
    -requests 8 -concurrency 2 -batch 4 -out "$tmp/out2.sam"
if ! grep -qv '^@' "$tmp/out2.sam"; then
    echo "serve-smoke: FAIL — no SAM records from the index-boot server" >&2
    exit 1
fi

curl -fsS "http://$addr/metrics" > "$tmp/metrics2.txt"
metric() { awk -v m="$1" '$1 == m { print $2; exit }' "$tmp/metrics2.txt"; }
loads=$(metric darwin_server_index_load_calls_total)
builds=$(metric darwin_server_index_build_calls_total)
fileloads=$(metric darwin_index_loads_total)
shardbuilds=$(metric darwin_shard_builds_total)
shardloads=$(metric darwin_shard_loads_total)
mappedbytes=$(metric darwin_index_mapped_bytes)
if [ "${loads:-0}" -lt 1 ] || [ "${fileloads:-0}" -lt 1 ]; then
    echo "serve-smoke: FAIL — no index load recorded (server_index_load=$loads index_loads=$fileloads)" >&2
    exit 1
fi
if [ "${builds:-0}" != 0 ] || [ "${shardbuilds:-0}" != 0 ]; then
    echo "serve-smoke: FAIL — index-boot server still built (index_build=$builds shard_builds=$shardbuilds)" >&2
    exit 1
fi
if [ "${shardloads:-0}" -lt 1 ]; then
    echo "serve-smoke: FAIL — no shard tables served from the mapping (shard_loads=$shardloads)" >&2
    exit 1
fi
if [ "${mappedbytes:-0}" -lt 1 ]; then
    echo "serve-smoke: FAIL — mapped-bytes gauge is $mappedbytes" >&2
    exit 1
fi
echo "serve-smoke: first request served with zero builds (index_load=$loads shard_loads=$shardloads mapped_bytes=$mappedbytes)"

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "serve-smoke: FAIL — index-boot darwind exited non-zero on SIGTERM:" >&2
    cat "$tmp/darwind2.log" >&2
    exit 1
fi
pid=""
if ! grep -q "drain complete" "$tmp/darwind2.log"; then
    echo "serve-smoke: FAIL — index-boot darwind had no clean-drain log line:" >&2
    cat "$tmp/darwind2.log" >&2
    exit 1
fi
echo "serve-smoke: OK (prebuilt-index boot served without a build pass)"
