#!/usr/bin/env bash
# serve-smoke: end-to-end check of the darwind serving path.
#   1. build darwind, darwin-client, genomesim, readsim
#   2. generate a synthetic genome + simulated reads
#   3. start darwind, wait for /readyz
#   4. fire darwin-client at it, assert non-empty SAM output
#   5. assert /v1/indexes reports the sharded index's per-shard residency
#   6. SIGTERM darwind, assert clean drain (exit 0 + drain log line)
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
go build -o "$tmp/bin/" ./cmd/darwind ./cmd/darwin-client ./cmd/genomesim ./cmd/readsim

echo "serve-smoke: generating synthetic genome and reads"
"$tmp/bin/genomesim" -len 150000 -seed 7 -out "$tmp/ref.fa" 2>/dev/null
"$tmp/bin/readsim" -ref "$tmp/ref.fa" -n 48 -len 1200 -seed 9 -out "$tmp/reads.fq" 2>/dev/null

"$tmp/bin/darwind" -addr 127.0.0.1:0 -ref "$tmp/ref.fa" \
    -k 11 -n 400 -h 20 -batch-wait 2ms \
    -shards 4 -shard-mem 256M \
    -report "$tmp/darwind_report.json" 2> "$tmp/darwind.log" &
pid=$!

addr=""
for _ in $(seq 1 200); do
    addr=$(sed -n 's|.*serving on http://\([^/]*\)/.*|\1|p' "$tmp/darwind.log" | head -1)
    if [ -n "$addr" ]; then
        if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
            break
        fi
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: FAIL — darwind exited early:" >&2
        cat "$tmp/darwind.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: FAIL — darwind never became ready:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
echo "serve-smoke: darwind ready on $addr"

"$tmp/bin/darwin-client" -addr "$addr" -reads "$tmp/reads.fq" \
    -requests 24 -concurrency 4 -batch 4 -out "$tmp/out.sam"

if ! grep -qv '^@' "$tmp/out.sam"; then
    echo "serve-smoke: FAIL — no SAM records in client output" >&2
    exit 1
fi
records=$(grep -cv '^@' "$tmp/out.sam")
echo "serve-smoke: client received $records SAM records"

# The index is served sharded (-shards 4): /v1/indexes must report the
# shard geometry and per-shard residency after the mapping traffic.
curl -fsS "http://$addr/v1/indexes" > "$tmp/indexes.json"
if ! grep -q '"shards": 4' "$tmp/indexes.json"; then
    echo "serve-smoke: FAIL — /v1/indexes reports no 4-shard geometry:" >&2
    cat "$tmp/indexes.json" >&2
    exit 1
fi
if ! grep -Eq '"resident": [1-9]' "$tmp/indexes.json"; then
    echo "serve-smoke: FAIL — /v1/indexes reports no resident shards:" >&2
    cat "$tmp/indexes.json" >&2
    exit 1
fi
if ! grep -q '"shard_detail"' "$tmp/indexes.json" || ! grep -Eq '"resident": true' "$tmp/indexes.json"; then
    echo "serve-smoke: FAIL — /v1/indexes has no per-shard residency detail:" >&2
    cat "$tmp/indexes.json" >&2
    exit 1
fi
echo "serve-smoke: sharded index residency reported on /v1/indexes"

kill -TERM "$pid"
if ! wait "$pid"; then
    echo "serve-smoke: FAIL — darwind exited non-zero on SIGTERM:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
pid=""
if ! grep -q "drain complete" "$tmp/darwind.log"; then
    echo "serve-smoke: FAIL — no clean-drain log line:" >&2
    cat "$tmp/darwind.log" >&2
    exit 1
fi
if [ ! -s "$tmp/darwind_report.json" ]; then
    echo "serve-smoke: FAIL — darwind wrote no run report" >&2
    exit 1
fi
echo "serve-smoke: OK (clean drain, run report written)"
