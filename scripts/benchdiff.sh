#!/bin/sh
# Compare two benchmark run reports (BENCH_*.json) and fail on
# throughput regressions. Thin wrapper over cmd/benchdiff so CI and
# humans share one entry point:
#
#   scripts/benchdiff.sh [-threshold 0.10] OLD.json NEW.json
#
# Exit status: 0 when no tracked rate drops more than the threshold,
# nonzero on regression, usage error, or unreadable report.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchdiff "$@"
